#include "sim/datapath_sim.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "sim/exec.hpp"
#include "support/logging.hpp"

namespace cs {

namespace {

/** Key for one dynamic value instance. */
using Instance = std::pair<std::uint32_t, int>; // (value id, iteration)

struct Execution
{
    OperationId op;
    int iter;
    std::int64_t issue;
    std::int64_t complete;
};

struct PendingStore
{
    std::int64_t cycle;
    std::int64_t address;
    Word value;
};

} // namespace

SimResult
simulateBlock(const Kernel &kernel, const Machine &machine,
              const BlockSchedule &schedule, const MemoryImage &initial,
              int iterations, bool checkRoutes)
{
    SimResult result;
    result.memory = initial;
    result.peakRegFileOccupancy.assign(machine.numRegFiles(), 0);

    const Block &blk = kernel.block(schedule.block());
    const int ii = schedule.ii();
    const int span =
        ii > 0 ? ii : schedule.length(kernel, machine);

    auto complain = [&](const std::string &what) {
        if (result.problems.size() < 64)
            result.problems.push_back(what);
    };

    // Route lookup by (reader, slot).
    std::map<std::pair<std::uint32_t, int>, const RouteRecord *>
        route_for;
    for (const RouteRecord &route : schedule.routes())
        route_for[{route.reader.index(), route.slot}] = &route;

    // Build the execution list, ordered by absolute issue cycle.
    std::vector<Execution> executions;
    executions.reserve(blk.operations.size() * iterations);
    for (int k = 0; k < iterations; ++k) {
        for (OperationId op_id : blk.operations) {
            const Placement &p = schedule.placement(op_id);
            if (!p.scheduled) {
                complain("unscheduled operation " +
                         kernel.operation(op_id).name);
                continue;
            }
            int lat = machine.latency(kernel.operation(op_id).opcode);
            std::int64_t issue =
                p.cycle + static_cast<std::int64_t>(k) * span;
            executions.push_back(
                Execution{op_id, k, issue, issue + lat});
        }
    }
    std::stable_sort(executions.begin(), executions.end(),
                     [](const Execution &a, const Execution &b) {
                         return a.issue < b.issue;
                     });

    std::map<Instance, Word> values;
    // (register file, instance) -> arrival cycle of the value there.
    std::map<std::pair<std::uint32_t, Instance>, std::int64_t> arrivals;
    // Bus occupancy: (cycle, bus) -> (instance, write role, owner tag).
    struct BusUse
    {
        Instance inst;
        bool writeRole;
        std::uint32_t reader;
        int slot;
    };
    std::map<std::pair<std::int64_t, std::uint32_t>, BusUse> buses;
    // Register-pressure intervals: (rf, instance) -> last read cycle.
    std::map<std::pair<std::uint32_t, Instance>, std::int64_t> last_read;

    std::vector<PendingStore> pending;
    auto flush_stores = [&](std::int64_t upto) {
        std::size_t kept = 0;
        for (PendingStore &store : pending) {
            if (store.cycle <= upto)
                result.memory.store(store.address, store.value);
            else
                pending[kept++] = store;
        }
        pending.resize(kept);
    };

    std::vector<Word> scratchpad(4096);

    auto claim_bus = [&](std::int64_t cycle, BusId bus, Instance inst,
                         bool writeRole, std::uint32_t reader,
                         int slot) {
        auto key = std::make_pair(cycle, bus.index());
        auto it = buses.find(key);
        if (it == buses.end()) {
            buses.emplace(key, BusUse{inst, writeRole, reader, slot});
            return;
        }
        const BusUse &held = it->second;
        bool same_broadcast = writeRole && held.writeRole &&
                              held.inst == inst;
        bool same_operand = !writeRole && !held.writeRole &&
                            held.reader == reader && held.slot == slot;
        if (!same_broadcast && !same_operand) {
            complain("bus " + machine.bus(bus).name +
                     " carries two values at cycle " +
                     std::to_string(cycle));
        }
    };

    for (const Execution &exec : executions) {
        flush_stores(exec.issue);
        const Operation &op = kernel.operation(exec.op);

        // Gather operands.
        std::vector<Word> args(op.operands.size());
        for (std::size_t s = 0; s < op.operands.size(); ++s) {
            const Operand &operand = op.operands[s];
            switch (operand.kind) {
              case Operand::Kind::ImmInt:
                args[s] = Word::fromInt(operand.immInt);
                break;
              case Operand::Kind::ImmFloat:
                args[s] = Word::fromFloat(operand.immFloat);
                break;
              case Operand::Kind::Value: {
                int src_iter = exec.iter - operand.distance;
                Instance inst{operand.value.index(), src_iter};
                if (src_iter < 0) {
                    args[s] = Word{}; // pre-loop values read as zero
                } else {
                    auto it = values.find(inst);
                    if (it == values.end()) {
                        complain("operand of " + op.name +
                                 " consumed before production");
                        args[s] = Word{};
                    } else {
                        args[s] = it->second;
                    }
                }
                // Route check: the value must sit in the read stub's
                // register file by this cycle.
                if (checkRoutes && src_iter >= 0) {
                    auto rit = route_for.find(
                        {exec.op.index(), static_cast<int>(s)});
                    if (rit == route_for.end()) {
                        complain("no route for operand of " + op.name);
                        break;
                    }
                    const RouteRecord &route = *rit->second;
                    RegFileId rf = machine.readPortRegFile(
                        route.readStub.readPort);
                    if (route.writer.valid()) {
                        auto ait =
                            arrivals.find({rf.index(), inst});
                        if (ait == arrivals.end()) {
                            complain("value for " + op.name +
                                     " never arrives in " +
                                     machine.regFile(rf).name);
                        } else if (ait->second > exec.issue) {
                            complain("value for " + op.name +
                                     " arrives after issue");
                        }
                    }
                    claim_bus(exec.issue, route.readStub.bus, inst,
                              false, exec.op.index(),
                              static_cast<int>(s));
                    auto &lr = last_read[{rf.index(), inst}];
                    lr = std::max(lr, exec.issue);
                }
                break;
              }
              case Operand::Kind::None:
                complain("unset operand in " + op.name);
                break;
            }
        }

        // Execute.
        Word out{};
        switch (op.opcode) {
          case Opcode::Load: {
            std::int64_t address =
                args[0].i +
                static_cast<std::int64_t>(exec.iter) * op.iterStride;
            out = result.memory.load(address);
            break;
          }
          case Opcode::Store: {
            std::int64_t address =
                args[0].i +
                static_cast<std::int64_t>(exec.iter) * op.iterStride;
            pending.push_back(
                PendingStore{exec.complete, address, args[1]});
            break;
          }
          case Opcode::SpRead:
            out = scratchpad[args[0].i & 4095];
            break;
          case Opcode::SpWrite:
            scratchpad[args[0].i & 4095] = args[1];
            break;
          default:
            out = evalOpcode(op.opcode, args);
            break;
        }

        if (op.hasResult()) {
            Instance inst{op.result.index(), exec.iter};
            values[inst] = out;
            if (checkRoutes) {
                // Deposit through every write stub routed from this op.
                for (const RouteRecord &route : schedule.routes()) {
                    if (route.writer != exec.op || !route.writeStub)
                        continue;
                    RegFileId rf = machine.writePortRegFile(
                        route.writeStub->writePort);
                    auto key = std::make_pair(rf.index(), inst);
                    if (!arrivals.count(key))
                        arrivals[key] = exec.complete;
                    claim_bus(exec.complete - 1, route.writeStub->bus,
                              inst, true, 0, 0);
                }
            }
        }
        result.cycles = std::max(result.cycles, exec.complete);
    }
    flush_stores(result.cycles);

    // Register pressure: max overlap of [arrival, last read] intervals
    // per register file.
    {
        std::map<std::uint32_t,
                 std::vector<std::pair<std::int64_t, int>>>
            events;
        for (const auto &[key, arrival] : arrivals) {
            auto lr = last_read.find(key);
            std::int64_t end =
                lr == last_read.end() ? arrival : lr->second;
            events[key.first].push_back({arrival, +1});
            events[key.first].push_back({end + 1, -1});
        }
        for (auto &[rf, evs] : events) {
            std::sort(evs.begin(), evs.end());
            int live = 0;
            for (auto &[cycle, delta] : evs) {
                live += delta;
                result.peakRegFileOccupancy[rf] =
                    std::max(result.peakRegFileOccupancy[rf], live);
            }
        }
    }

    result.ok = result.problems.empty();
    return result;
}

} // namespace cs
