/**
 * @file
 * Datapath simulator: executes a scheduled block on the modeled
 * machine, iteration by iteration, moving every communicated value
 * through its assigned route. Verifies dynamically what the static
 * validator checks structurally:
 *
 *  - every operand arrives in the register file its read stub names,
 *    no later than the reader's issue cycle;
 *  - no bus carries two different value instances in one cycle;
 *  - memory ordering is respected (stores apply at completion, loads
 *    sample at issue).
 *
 * For a modulo schedule (ii > 0) iteration k issues at k*ii plus the
 * in-schedule offset (overlapped, software-pipelined execution); for a
 * plain schedule iterations run back to back. Loop-carried operands
 * whose producing iteration would be negative read as zero words,
 * matching the kernels' scalar references.
 */

#ifndef CS_SIM_DATAPATH_SIM_HPP
#define CS_SIM_DATAPATH_SIM_HPP

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "ir/kernel.hpp"
#include "machine/machine.hpp"
#include "support/memory_image.hpp"

namespace cs {

/** Outcome of simulating a scheduled block. */
struct SimResult
{
    bool ok = false;
    std::vector<std::string> problems;
    MemoryImage memory;
    /** Total cycles from first issue to last completion. */
    std::int64_t cycles = 0;
    /** Peak simultaneous live values per register file (pressure). */
    std::vector<int> peakRegFileOccupancy;
};

/**
 * Execute @p iterations of the scheduled block over @p initial memory.
 * Scratchpad contents start zeroed. Route checking can be disabled
 * for pure functional runs (e.g. conventional-scheduler comparisons).
 */
SimResult simulateBlock(const Kernel &kernel, const Machine &machine,
                        const BlockSchedule &schedule,
                        const MemoryImage &initial, int iterations,
                        bool checkRoutes = true);

} // namespace cs

#endif // CS_SIM_DATAPATH_SIM_HPP
