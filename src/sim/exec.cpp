#include "sim/exec.hpp"

#include <algorithm>

#include "support/fixed_point.hpp"
#include "support/logging.hpp"

namespace cs {

Word
evalOpcode(Opcode op, const std::vector<Word> &args)
{
    auto a = [&](std::size_t n) -> const Word & {
        CS_ASSERT(n < args.size(), "missing operand for ",
                  opcodeName(op));
        return args[n];
    };

    switch (op) {
      case Opcode::IAdd:
        return Word::fromInt(a(0).i + a(1).i);
      case Opcode::ISub:
        return Word::fromInt(a(0).i - a(1).i);
      case Opcode::IMin:
        return Word::fromInt(std::min(a(0).i, a(1).i));
      case Opcode::IMax:
        return Word::fromInt(std::max(a(0).i, a(1).i));
      case Opcode::IAnd:
        return Word::fromInt(a(0).i & a(1).i);
      case Opcode::IOr:
        return Word::fromInt(a(0).i | a(1).i);
      case Opcode::IXor:
        return Word::fromInt(a(0).i ^ a(1).i);
      case Opcode::IShl:
        return Word::fromInt(a(0).i << (a(1).i & 63));
      case Opcode::IShr:
        return Word::fromInt(a(0).i >> (a(1).i & 63));
      case Opcode::IMul:
        return Word::fromInt(a(0).i * a(1).i);
      case Opcode::IMulFix:
        return Word::fromInt(
            fixMul(static_cast<std::int32_t>(a(0).i),
                   static_cast<std::int32_t>(a(1).i)));
      case Opcode::IDiv:
        return Word::fromInt(a(1).i == 0 ? 0 : a(0).i / a(1).i);
      case Opcode::FAdd:
        return Word::fromFloat(a(0).f + a(1).f);
      case Opcode::FSub:
        return Word::fromFloat(a(0).f - a(1).f);
      case Opcode::FMul:
        return Word::fromFloat(a(0).f * a(1).f);
      case Opcode::FDiv:
        return Word::fromFloat(a(1).f == 0.0 ? 0.0 : a(0).f / a(1).f);
      case Opcode::Shuffle:
        return Word::fromInt((a(0).i << 32) |
                             (a(1).i & 0xffffffffLL));
      case Opcode::Copy:
        return a(0); // both views preserved
      default:
        CS_PANIC("evalOpcode cannot evaluate ", opcodeName(op));
    }
}

} // namespace cs
