/**
 * @file
 * Functional semantics of the opcode set: pure evaluation over Words.
 * Memory and scratchpad opcodes are handled by the simulator proper.
 */

#ifndef CS_SIM_EXEC_HPP
#define CS_SIM_EXEC_HPP

#include <vector>

#include "machine/opclass.hpp"
#include "support/memory_image.hpp"

namespace cs {

/**
 * Evaluate a non-memory opcode. Integer opcodes consume/produce the
 * integer view, floating opcodes the floating view; Copy preserves
 * both views bit-for-bit. Divides by zero yield zero (the modeled
 * datapath saturates rather than trapping).
 */
Word evalOpcode(Opcode op, const std::vector<Word> &args);

} // namespace cs

#endif // CS_SIM_EXEC_HPP
