#include "sim/harness.hpp"

#include <algorithm>

#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "kernels/detail.hpp"
#include "support/logging.hpp"

namespace cs {

KernelRunResult
runKernel(const KernelSpec &spec, const Machine &machine, bool pipelined,
          const SchedulerOptions &options, int iterations,
          std::uint64_t seed)
{
    KernelRunResult result;
    Kernel kernel = spec.build();
    BlockId loop = kernel.blocks().front().id;

    if (pipelined) {
        PipelineResult pipe =
            schedulePipelined(kernel, loop, machine, options);
        if (!pipe.success) {
            result.problems.push_back(pipe.inner.failure);
            return result;
        }
        result.cyclesPerIteration = pipe.ii;
        result.sched = std::move(pipe.inner);
    } else {
        ScheduleResult block =
            scheduleBlock(kernel, loop, machine, options);
        if (!block.success) {
            result.problems.push_back(block.failure);
            return result;
        }
        result.cyclesPerIteration =
            block.schedule.length(block.kernel, machine);
        result.sched = std::move(block);
    }
    result.scheduled = true;
    result.copies = static_cast<int>(
        result.sched.kernel.numOperations() -
        result.sched.kernel.numOriginalOperations());

    auto structural = validateSchedule(result.sched.kernel, machine,
                                       result.sched.schedule);
    result.valid = structural.empty();
    for (auto &p : structural)
        result.problems.push_back("validate: " + p);
    if (!result.valid)
        return result;

    if (iterations < 0)
        iterations = spec.testIterations;
    iterations = std::min(iterations, kern::kMaxIterations);

    MemoryImage image;
    Rng rng(seed);
    spec.init(image, rng);

    MemoryImage expected = image;
    spec.reference(expected, iterations);

    SimResult sim =
        simulateBlock(result.sched.kernel, machine,
                      result.sched.schedule, image, iterations);
    result.simulated = sim.ok;
    for (auto &p : sim.problems)
        result.problems.push_back("sim: " + p);
    if (!sim.ok)
        return result;

    // Bit-exact comparison over the union of touched cells.
    bool match = true;
    for (const auto &[address, word] : expected.cells()) {
        if (!(sim.memory.load(address) == word)) {
            match = false;
            result.problems.push_back(
                "mismatch at address " + std::to_string(address));
            break;
        }
    }
    for (const auto &[address, word] : sim.memory.cells()) {
        if (!(expected.load(address) == word)) {
            match = false;
            result.problems.push_back(
                "unexpected write at address " +
                std::to_string(address));
            break;
        }
    }
    result.matches = match;
    return result;
}

int
scheduleCyclesPerIteration(const KernelSpec &spec, const Machine &machine,
                           bool pipelined,
                           const SchedulerOptions &options)
{
    Kernel kernel = spec.build();
    BlockId loop = kernel.blocks().front().id;
    if (pipelined) {
        PipelineResult pipe =
            schedulePipelined(kernel, loop, machine, options);
        if (!pipe.success) {
            CS_FATAL("cannot pipeline ", spec.name, " on ",
                     machine.name(), ": ", pipe.inner.failure);
        }
        return pipe.ii;
    }
    ScheduleResult block = scheduleBlock(kernel, loop, machine, options);
    if (!block.success) {
        CS_FATAL("cannot schedule ", spec.name, " on ", machine.name(),
                 ": ", block.failure);
    }
    return block.schedule.length(block.kernel, machine);
}

} // namespace cs
