/**
 * @file
 * One-call harness used by tests, examples, and benches: build a
 * Table-1 kernel, schedule it (plain or software-pipelined) on a
 * machine, validate the schedule structurally, execute it on the
 * datapath simulator, and compare the memory image against the
 * kernel's scalar reference bit-for-bit.
 */

#ifndef CS_SIM_HARNESS_HPP
#define CS_SIM_HARNESS_HPP

#include <string>
#include <vector>

#include "core/comm_scheduler.hpp"
#include "kernels/kernels.hpp"
#include "machine/machine.hpp"
#include "sim/datapath_sim.hpp"

namespace cs {

/** Everything a test or bench wants to know about one kernel run. */
struct KernelRunResult
{
    bool scheduled = false;
    bool valid = false;    ///< structural validation passed
    bool simulated = false;
    bool matches = false;  ///< simulated memory == reference memory
    /** Cycles per iteration: the achieved II, or the block length. */
    int cyclesPerIteration = 0;
    int copies = 0;        ///< copy operations in the final schedule
    ScheduleResult sched;
    std::vector<std::string> problems;
};

/**
 * Run @p spec on @p machine. @p pipelined selects modulo scheduling
 * (the paper's configuration) versus a plain block schedule.
 * @p iterations < 0 uses the spec's default test iteration count.
 */
KernelRunResult runKernel(const KernelSpec &spec, const Machine &machine,
                          bool pipelined,
                          const SchedulerOptions &options = {},
                          int iterations = -1, std::uint64_t seed = 42);

/**
 * Schedule only (no simulation): returns cycles per iteration, the
 * paper's Figure 28 quantity. Fatal if scheduling fails.
 */
int scheduleCyclesPerIteration(const KernelSpec &spec,
                               const Machine &machine, bool pipelined,
                               const SchedulerOptions &options = {});

} // namespace cs

#endif // CS_SIM_HARNESS_HPP
