/**
 * @file
 * A dynamically-sized bitset with inline storage, used for the
 * scheduler's occupancy masks (buses, ports, functional units) and the
 * machine's route-feasibility masks (register-file reachability).
 * Machines in this codebase have at most a few hundred of any one
 * resource, so the common case needs no heap allocation at all; larger
 * machines transparently spill to the heap.
 *
 * Only the operations the hot path needs are provided: set/reset/test,
 * intersection tests, popcount, and clear. All are O(words) or O(1).
 */

#ifndef CS_SUPPORT_BITSET_HPP
#define CS_SUPPORT_BITSET_HPP

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cs {

/** Bitset sized at construction; inline up to kInlineBits bits. */
class InlineBitset
{
  public:
    static constexpr std::size_t kInlineWords = 4;
    static constexpr std::size_t kInlineBits = kInlineWords * 64;

    InlineBitset() = default;

    explicit InlineBitset(std::size_t numBits) { resize(numBits); }

    InlineBitset(const InlineBitset &other) { *this = other; }

    InlineBitset &
    operator=(const InlineBitset &other)
    {
        if (this == &other)
            return *this;
        numBits_ = other.numBits_;
        numWords_ = other.numWords_;
        heap_ = other.heap_;
        if (!usesHeap())
            std::memcpy(inline_, other.inline_, sizeof inline_);
        return *this;
    }

    InlineBitset(InlineBitset &&other) noexcept { *this = std::move(other); }

    InlineBitset &
    operator=(InlineBitset &&other) noexcept
    {
        if (this == &other)
            return *this;
        numBits_ = other.numBits_;
        numWords_ = other.numWords_;
        heap_ = std::move(other.heap_);
        if (!usesHeap())
            std::memcpy(inline_, other.inline_, sizeof inline_);
        return *this;
    }

    /** Resize to @p numBits, clearing every bit. */
    void
    resize(std::size_t numBits)
    {
        numBits_ = numBits;
        numWords_ = (numBits + 63) / 64;
        if (usesHeap())
            heap_.assign(numWords_, 0);
        else
            std::memset(inline_, 0, sizeof inline_);
    }

    std::size_t size() const { return numBits_; }

    void
    set(std::size_t bit)
    {
        words()[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }

    void
    reset(std::size_t bit)
    {
        words()[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
    }

    bool
    test(std::size_t bit) const
    {
        return (words()[bit / 64] >> (bit % 64)) & 1u;
    }

    void
    clear()
    {
        if (usesHeap())
            std::memset(heap_.data(), 0, numWords_ * sizeof(std::uint64_t));
        else
            std::memset(inline_, 0, sizeof inline_);
    }

    bool
    any() const
    {
        const std::uint64_t *w = words();
        for (std::size_t i = 0; i < numWords_; ++i) {
            if (w[i])
                return true;
        }
        return false;
    }

    bool
    none() const
    {
        return !any();
    }

    /** True when this and @p other share at least one set bit. */
    bool
    intersects(const InlineBitset &other) const
    {
        const std::uint64_t *a = words();
        const std::uint64_t *b = other.words();
        std::size_t n = numWords_ < other.numWords_ ? numWords_
                                                    : other.numWords_;
        for (std::size_t i = 0; i < n; ++i) {
            if (a[i] & b[i])
                return true;
        }
        return false;
    }

    /** Set every bit that is set in @p other (sizes must match). */
    void
    orWith(const InlineBitset &other)
    {
        std::uint64_t *a = words();
        const std::uint64_t *b = other.words();
        std::size_t n = numWords_ < other.numWords_ ? numWords_
                                                    : other.numWords_;
        for (std::size_t i = 0; i < n; ++i)
            a[i] |= b[i];
    }

    /** Number of set bits. */
    int
    count() const
    {
        int total = 0;
        const std::uint64_t *w = words();
        for (std::size_t i = 0; i < numWords_; ++i)
            total += std::popcount(w[i]);
        return total;
    }

    /**
     * Fold every storage word into an FNV-1a style accumulator and
     * return the new state: used by the reservation table to hash
     * occupancy-mask rows into no-good signatures without exposing the
     * word array itself.
     */
    std::uint64_t
    foldInto(std::uint64_t h) const
    {
        const std::uint64_t *w = words();
        for (std::size_t i = 0; i < numWords_; ++i)
            h = (h ^ w[i]) * 1099511628211ULL;
        return h;
    }

  private:
    bool usesHeap() const { return numWords_ > kInlineWords; }

    std::uint64_t *
    words()
    {
        return usesHeap() ? heap_.data() : inline_;
    }

    const std::uint64_t *
    words() const
    {
        return usesHeap() ? heap_.data() : inline_;
    }

    std::size_t numBits_ = 0;
    std::size_t numWords_ = 0;
    std::uint64_t inline_[kInlineWords] = {};
    std::vector<std::uint64_t> heap_;
};

} // namespace cs

#endif // CS_SUPPORT_BITSET_HPP
