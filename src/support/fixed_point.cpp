#include "support/fixed_point.hpp"

#include <cmath>

namespace cs {

std::int32_t
toFixed(double value)
{
    return static_cast<std::int32_t>(
        std::lround(value * (1 << kFixFracBits)));
}

double
fromFixed(std::int32_t value)
{
    return static_cast<double>(value) / (1 << kFixFracBits);
}

std::int32_t
fixMul(std::int32_t a, std::int32_t b)
{
    std::int64_t wide = static_cast<std::int64_t>(a) * b;
    wide += (1 << (kFixFracBits - 1)); // round to nearest
    return static_cast<std::int32_t>(wide >> kFixFracBits);
}

std::int16_t
saturate16(std::int32_t value)
{
    if (value > 32767)
        return 32767;
    if (value < -32768)
        return -32768;
    return static_cast<std::int16_t>(value);
}

} // namespace cs
