/**
 * @file
 * 16-bit fixed-point helpers used by the integer media kernels (the
 * paper's DCT operates on "an 8x8 matrix of 16-bit fixed-point numbers"
 * and FIR-INT uses "16-bit integer coefficients and data").
 *
 * Values are stored in Q(15-kFracBits).kFracBits format inside a plain
 * int32_t lane so intermediate products have headroom; saturation to
 * 16 bits happens only at explicit narrowing points, mirroring the
 * Imagine datapath's 16-bit arithmetic with a wide accumulator.
 */

#ifndef CS_SUPPORT_FIXED_POINT_HPP
#define CS_SUPPORT_FIXED_POINT_HPP

#include <cstdint>

namespace cs {

/** Fractional bits used by the fixed-point kernels (Q8.8-style data). */
constexpr int kFixFracBits = 8;

/** Convert a double to fixed point (round to nearest). */
std::int32_t toFixed(double value);

/** Convert fixed point back to double. */
double fromFixed(std::int32_t value);

/** Fixed-point multiply with rounding: (a*b) >> kFixFracBits. */
std::int32_t fixMul(std::int32_t a, std::int32_t b);

/** Saturate to the signed 16-bit range. */
std::int16_t saturate16(std::int32_t value);

} // namespace cs

#endif // CS_SUPPORT_FIXED_POINT_HPP
