/**
 * @file
 * FNV-1a hashing over 64-bit lanes: the one hash function the
 * scheduler's memo layers share (no-good signatures, reservation-row
 * content hashes). Feeding each datum as a full 64-bit lane instead of
 * byte-at-a-time keeps the mix loop out of the profile while retaining
 * FNV's avalanche behaviour for small structured keys.
 */

#ifndef CS_SUPPORT_FNV_HPP
#define CS_SUPPORT_FNV_HPP

#include <cstdint>

namespace cs {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/** One FNV-1a round absorbing a 64-bit lane. */
constexpr std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t lane)
{
    return (h ^ lane) * kFnvPrime;
}

/** Accumulating FNV-1a hasher over 64-bit lanes. */
struct FnvHasher
{
    std::uint64_t state = kFnvOffsetBasis;

    void u64(std::uint64_t v) { state = fnvMix(state, v); }
    void i32(int v)
    {
        u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
    }
    void boolean(bool v) { u64(v ? 1 : 0); }
};

} // namespace cs

#endif // CS_SUPPORT_FNV_HPP
