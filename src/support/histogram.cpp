#include "support/histogram.hpp"

#include <bit>
#include <cmath>

namespace cs {

std::size_t
StreamingHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSub)
        return static_cast<std::size_t>(value);
    // Top set bit selects the octave; the kSubBits bits below it
    // select the linear sub-bucket. Continuous with the direct range:
    // values in [16, 32) have shift == 0 and map to index == value.
    unsigned top = 63u - static_cast<unsigned>(std::countl_zero(value));
    unsigned shift = top - kSubBits;
    std::uint64_t mantissa = (value >> shift) - kSub;
    return ((static_cast<std::size_t>(top) - kSubBits + 1)
            << kSubBits) +
           static_cast<std::size_t>(mantissa);
}

std::uint64_t
StreamingHistogram::bucketLowerBound(std::size_t index)
{
    if (index < kSub)
        return static_cast<std::uint64_t>(index);
    std::size_t block = index >> kSubBits; // >= 1
    std::uint64_t mantissa = index & (kSub - 1);
    return (kSub + mantissa) << (block - 1);
}

StreamingHistogram::Snapshot
StreamingHistogram::snapshot() const
{
    Snapshot out;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        out.buckets[i] = n;
        out.count += n;
    }
    out.total = total_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
StreamingHistogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cumulative += buckets[i];
        if (cumulative >= rank)
            return bucketLowerBound(i);
    }
    return max;
}

void
StreamingHistogram::Snapshot::merge(const Snapshot &other)
{
    count += other.count;
    total += other.total;
    if (other.max > max)
        max = other.max;
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
}

HistogramSummary
summarizeHistogram(const StreamingHistogram::Snapshot &snapshot)
{
    HistogramSummary out;
    out.count = snapshot.count;
    out.mean = snapshot.mean();
    out.p50 = snapshot.quantile(0.50);
    out.p90 = snapshot.quantile(0.90);
    out.p99 = snapshot.quantile(0.99);
    out.p999 = snapshot.quantile(0.999);
    out.max = snapshot.max;
    return out;
}

} // namespace cs
