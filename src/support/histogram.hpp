/**
 * @file
 * Lock-cheap log-bucketed streaming histogram for service latency
 * distributions.
 *
 * Recording is wait-free: a sample lands in one of 976 fixed
 * power-of-two buckets (16 linear sub-buckets per octave, ~6.25% max
 * relative error) with a relaxed atomic increment, so worker and
 * reader threads can record on the hot path while a sampler thread
 * snapshots concurrently. Snapshots are plain structs that merge
 * across histograms/processes and answer p50/p90/p99/p99.9/max; the
 * quantile walk returns the bucket lower bound, which is exact for
 * values below 16 and a <=6.25% underestimate above.
 *
 * Units are the caller's choice; the serving tier records
 * microseconds (`serve.latency_us.*`). MetricsRegistry owns named
 * instances (support/metrics.hpp) and folds their quantiles into the
 * unified JSON dump.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace cs {

class StreamingHistogram
{
public:
    /// Linear sub-buckets per octave: 2^4 = 16 -> max relative
    /// bucket-width error of 1/16.
    static constexpr unsigned kSubBits = 4;
    static constexpr std::uint64_t kSub = 1ull << kSubBits;
    /// Values 0..15 map directly; octaves 4..63 contribute 16 buckets
    /// each: 16 + 60*16 = 976.
    static constexpr std::size_t kBuckets =
        ((64 - kSubBits) + 1) << kSubBits;

    /** Immutable, mergeable copy of the histogram state. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t total = 0;
        std::uint64_t max = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        /**
         * Value at quantile @p q in [0, 1]: the lower bound of the
         * bucket holding the ceil(q * count)-th smallest sample
         * (0 when empty).
         */
        std::uint64_t quantile(double q) const;

        double mean() const
        {
            return count == 0
                       ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(count);
        }

        /** Pointwise sum; max takes the larger side. */
        void merge(const Snapshot &other);
    };

    StreamingHistogram() = default;
    StreamingHistogram(const StreamingHistogram &) = delete;
    StreamingHistogram &operator=(const StreamingHistogram &) = delete;

    /** Wait-free: relaxed bucket increment + CAS max. */
    void record(std::uint64_t value)
    {
        buckets_[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
        total_.fetch_add(value, std::memory_order_relaxed);
        std::uint64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed))
            ;
    }

    /**
     * Consistent-enough copy for reporting: concurrent record()s may
     * or may not be included, but every sample lands in exactly one
     * snapshot-visible bucket (count is summed from the buckets, not
     * tracked separately, so count always equals the bucket sum).
     */
    Snapshot snapshot() const;

    /** Bucket index for @p value (exact below kSub, log-linear above). */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Smallest value mapping to bucket @p index (quantile inverse). */
    static std::uint64_t bucketLowerBound(std::size_t index);

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * The quantile set every emitter prints, in emission order:
 * count/mean plus p50/p90/p99/p99.9/max.
 */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t max = 0;
};

HistogramSummary summarizeHistogram(
    const StreamingHistogram::Snapshot &snapshot);

} // namespace cs
