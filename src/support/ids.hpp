/**
 * @file
 * Strongly-typed integer identifiers. Machine resources (functional units,
 * register files, buses, ports) and IR entities (values, operations,
 * blocks) are referenced by index into their owning container; the tag
 * types below keep the index spaces from being mixed up at compile time.
 */

#ifndef CS_SUPPORT_IDS_HPP
#define CS_SUPPORT_IDS_HPP

#include <cstdint>
#include <functional>
#include <ostream>

namespace cs {

/**
 * A typed wrapper around a 32-bit index. Distinct Tag types produce
 * mutually-incompatible id types. The value kInvalid (~0) denotes
 * "no entity"; default construction yields an invalid id.
 */
template <typename Tag>
class Id
{
  public:
    static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};

    constexpr Id() = default;
    constexpr explicit Id(std::uint32_t index) : index_(index) {}

    /** True when this id refers to an actual entity. */
    constexpr bool valid() const { return index_ != kInvalid; }
    constexpr std::uint32_t index() const { return index_; }

    constexpr auto operator<=>(const Id &) const = default;

  private:
    std::uint32_t index_ = kInvalid;
};

template <typename Tag>
std::ostream &
operator<<(std::ostream &os, Id<Tag> id)
{
    if (!id.valid())
        return os << "<invalid>";
    return os << id.index();
}

struct FuncUnitTag {};
struct RegFileTag {};
struct BusTag {};
struct ReadPortTag {};
struct WritePortTag {};
struct InputPortTag {};
struct OutputPortTag {};
struct ValueTag {};
struct OperationTag {};
struct BlockTag {};
struct CommTag {};

using FuncUnitId = Id<FuncUnitTag>;
using RegFileId = Id<RegFileTag>;
using BusId = Id<BusTag>;
/** A read port, numbered globally across all register files. */
using ReadPortId = Id<ReadPortTag>;
/** A write port, numbered globally across all register files. */
using WritePortId = Id<WritePortTag>;
/** A functional-unit input (operand slot), numbered globally. */
using InputPortId = Id<InputPortTag>;
/** A functional-unit output, numbered globally. */
using OutputPortId = Id<OutputPortTag>;
using ValueId = Id<ValueTag>;
using OperationId = Id<OperationTag>;
using BlockId = Id<BlockTag>;
/** A communication (write op -> read op operand), see core/communication. */
using CommId = Id<CommTag>;

} // namespace cs

namespace std {

template <typename Tag>
struct hash<cs::Id<Tag>>
{
    size_t
    operator()(cs::Id<Tag> id) const noexcept
    {
        return std::hash<std::uint32_t>{}(id.index());
    }
};

} // namespace std

#endif // CS_SUPPORT_IDS_HPP
