#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace cs {

namespace {

std::atomic<bool> verboseEnabled{true};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setVerboseLogging(bool enabled)
{
    verboseEnabled = enabled;
}

bool
verboseLogging()
{
    return verboseEnabled;
}

namespace detail {

void
logOnly(LogLevel level, std::string_view file, int line,
        const std::string &message)
{
    if (!verboseEnabled && (level == LogLevel::Inform ||
                            level == LogLevel::Warn)) {
        return;
    }
    std::fprintf(stderr, "[%s] %s (%.*s:%d)\n", levelName(level),
                 message.c_str(), static_cast<int>(file.size()),
                 file.data(), line);
}

void
logAndThrow(LogLevel level, std::string_view file, int line,
            const std::string &message)
{
    std::fprintf(stderr, "[%s] %s (%.*s:%d)\n", levelName(level),
                 message.c_str(), static_cast<int>(file.size()),
                 file.data(), line);
    if (level == LogLevel::Panic)
        throw PanicError(message);
    throw FatalError(message);
}

} // namespace detail

} // namespace cs
