/**
 * @file
 * Status and error reporting helpers, following the gem5 idiom:
 * panic() for internal invariant violations (library bugs), fatal() for
 * unrecoverable user errors (bad configuration, malformed kernels), and
 * warn()/inform() for advisory messages that never stop execution.
 */

#ifndef CS_SUPPORT_LOGGING_HPP
#define CS_SUPPORT_LOGGING_HPP

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace cs {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Sink for all log output; throws on Fatal/Panic (see logging.cpp). */
[[noreturn]] void logAndThrow(LogLevel level, std::string_view file,
                              int line, const std::string &message);

void logOnly(LogLevel level, std::string_view file, int line,
             const std::string &message);

/** Fold an arbitrary argument pack into one string via ostringstream. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Exception thrown by panic(): an internal invariant of the library was
 * violated. Catching it is only appropriate in tests.
 */
class PanicError : public std::runtime_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Exception thrown by fatal(): the caller handed the library an input it
 * cannot work with (unschedulable configuration, malformed IR, ...).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Enable/disable warn()/inform() output (tests silence it). */
void setVerboseLogging(bool enabled);
bool verboseLogging();

} // namespace cs

/** Internal invariant violation: a bug in this library. */
#define CS_PANIC(...)                                                        \
    ::cs::detail::logAndThrow(::cs::LogLevel::Panic, __FILE__, __LINE__,     \
                              ::cs::detail::formatMessage(__VA_ARGS__))

/** Unrecoverable user/input error. */
#define CS_FATAL(...)                                                        \
    ::cs::detail::logAndThrow(::cs::LogLevel::Fatal, __FILE__, __LINE__,     \
                              ::cs::detail::formatMessage(__VA_ARGS__))

/** Advisory: something is off but execution can continue. */
#define CS_WARN(...)                                                         \
    ::cs::detail::logOnly(::cs::LogLevel::Warn, __FILE__, __LINE__,          \
                          ::cs::detail::formatMessage(__VA_ARGS__))

/** Status message with no connotation of incorrect behaviour. */
#define CS_INFORM(...)                                                       \
    ::cs::detail::logOnly(::cs::LogLevel::Inform, __FILE__, __LINE__,        \
                          ::cs::detail::formatMessage(__VA_ARGS__))

/** Always-on assertion that panics with a readable message. */
#define CS_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            CS_PANIC("assertion failed: ", #cond, " ",                       \
                     ::cs::detail::formatMessage(__VA_ARGS__));              \
        }                                                                    \
    } while (0)

#endif // CS_SUPPORT_LOGGING_HPP
