/**
 * @file
 * Word and MemoryImage: the scalar value type and flat memory used by
 * both the datapath simulator and the kernels' scalar reference
 * implementations, so the two compute bit-identical results.
 *
 * A Word keeps coherent integer and floating views; integer opcodes
 * consume/produce the integer view, floating opcodes the floating
 * view. Uninitialized memory reads as zero in both views.
 */

#ifndef CS_SUPPORT_MEMORY_IMAGE_HPP
#define CS_SUPPORT_MEMORY_IMAGE_HPP

#include <cstdint>
#include <map>

namespace cs {

/** A machine word with coherent integer and floating views. */
struct Word
{
    std::int64_t i = 0;
    double f = 0.0;

    static Word
    fromInt(std::int64_t v)
    {
        return Word{v, static_cast<double>(v)};
    }

    static Word
    fromFloat(double v)
    {
        return Word{static_cast<std::int64_t>(v), v};
    }

    bool
    operator==(const Word &other) const
    {
        return i == other.i && f == other.f;
    }
};

/** Sparse flat memory; absent addresses read as zero. */
class MemoryImage
{
  public:
    Word
    load(std::int64_t address) const
    {
        auto it = cells_.find(address);
        return it == cells_.end() ? Word{} : it->second;
    }

    void store(std::int64_t address, Word value)
    {
        cells_[address] = value;
    }

    void
    storeInt(std::int64_t address, std::int64_t value)
    {
        store(address, Word::fromInt(value));
    }

    void
    storeFloat(std::int64_t address, double value)
    {
        store(address, Word::fromFloat(value));
    }

    std::int64_t loadInt(std::int64_t address) const
    {
        return load(address).i;
    }

    double loadFloat(std::int64_t address) const
    {
        return load(address).f;
    }

    std::size_t size() const { return cells_.size(); }
    const std::map<std::int64_t, Word> &cells() const { return cells_; }

  private:
    std::map<std::int64_t, Word> cells_;
};

} // namespace cs

#endif // CS_SUPPORT_MEMORY_IMAGE_HPP
