#include "support/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace cs {

namespace {

double
percentile(const std::vector<double> &sorted, double p)
{
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[idx];
}

std::map<std::string, DistributionStats>
summarizeAll(const std::map<std::string, std::vector<double>> &samples)
{
    std::map<std::string, DistributionStats> out;
    for (const auto &[name, values] : samples)
        out.emplace(name, summarizeDistribution(values));
    return out;
}

void
writeDistributionObject(std::ostream &os,
                        const std::map<std::string, DistributionStats> &m,
                        const char *unitSuffix)
{
    os << "{";
    bool first = true;
    for (const auto &[name, d] : m) {
        if (!first)
            os << ",";
        first = false;
        writeJsonQuoted(os, name);
        os << ":{\"count\":" << d.count << ",\"total" << unitSuffix
           << "\":" << d.total << ",\"p50" << unitSuffix << "\":" << d.p50
           << ",\"p95" << unitSuffix << "\":" << d.p95 << ",\"max"
           << unitSuffix << "\":" << d.max << "}";
    }
    os << "}";
}

} // namespace

DistributionStats
summarizeDistribution(std::vector<double> samples)
{
    DistributionStats stats;
    if (samples.empty())
        return stats;
    std::sort(samples.begin(), samples.end());
    stats.count = samples.size();
    for (double v : samples)
        stats.total += v;
    stats.p50 = percentile(samples, 0.50);
    stats.p95 = percentile(samples, 0.95);
    stats.max = samples.back();
    return stats;
}

void
MetricsRegistry::recordTimeMs(const std::string &name, double ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    timers_[name].push_back(ms);
}

void
MetricsRegistry::recordValue(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name].push_back(value);
}

std::map<std::string, DistributionStats>
MetricsRegistry::timerSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summarizeAll(timers_);
}

std::map<std::string, DistributionStats>
MetricsRegistry::histogramSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summarizeAll(histograms_);
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\"counters\":";
    writeAllCounters(os, counters_);
    os << ",\"timers\":";
    writeDistributionObject(os, timerSnapshot(), "_ms");
    os << ",\"histograms\":";
    writeDistributionObject(os, histogramSnapshot(), "");
    os << "}";
}

void
writeJsonQuoted(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeCounterObject(std::ostream &os, const CounterSet &stats,
                   const char *const *names, std::size_t count)
{
    os << "{";
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            os << ",";
        os << "\"" << names[i] << "\":" << stats.get(names[i]);
    }
    os << "}";
}

void
writeAllCounters(std::ostream &os, const CounterSet &stats)
{
    os << "{";
    bool first = true;
    stats.forEach([&](const std::string &name, std::uint64_t value) {
        if (!first)
            os << ",";
        first = false;
        writeJsonQuoted(os, name);
        os << ":" << value;
    });
    os << "}";
}

} // namespace cs
