#include "support/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>

namespace cs {

namespace {

double
percentile(const std::vector<double> &sorted, double p)
{
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[idx];
}

std::map<std::string, DistributionStats>
summarizeAll(const std::map<std::string, std::vector<double>> &samples)
{
    std::map<std::string, DistributionStats> out;
    for (const auto &[name, values] : samples)
        out.emplace(name, summarizeDistribution(values));
    return out;
}

void
writeDistributionObject(std::ostream &os,
                        const std::map<std::string, DistributionStats> &m,
                        const char *unitSuffix)
{
    os << "{";
    bool first = true;
    for (const auto &[name, d] : m) {
        if (!first)
            os << ",";
        first = false;
        writeJsonQuoted(os, name);
        os << ":{\"count\":" << d.count << ",\"total" << unitSuffix
           << "\":" << d.total << ",\"p50" << unitSuffix << "\":" << d.p50
           << ",\"p95" << unitSuffix << "\":" << d.p95 << ",\"max"
           << unitSuffix << "\":" << d.max << "}";
    }
    os << "}";
}

} // namespace

DistributionStats
summarizeDistribution(std::vector<double> samples)
{
    DistributionStats stats;
    if (samples.empty())
        return stats;
    std::sort(samples.begin(), samples.end());
    stats.count = samples.size();
    for (double v : samples)
        stats.total += v;
    stats.p50 = percentile(samples, 0.50);
    stats.p95 = percentile(samples, 0.95);
    stats.max = samples.back();
    return stats;
}

void
MetricsRegistry::recordTimeMs(const std::string &name, double ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    timers_[name].push_back(ms);
}

void
MetricsRegistry::recordValue(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name].push_back(value);
}

std::map<std::string, DistributionStats>
MetricsRegistry::timerSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summarizeAll(timers_);
}

std::map<std::string, DistributionStats>
MetricsRegistry::histogramSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summarizeAll(histograms_);
}

StreamingHistogram &
MetricsRegistry::streamingHistogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = streaming_[name];
    if (!slot)
        slot = std::make_unique<StreamingHistogram>();
    return *slot;
}

std::map<std::string, StreamingHistogram::Snapshot>
MetricsRegistry::streamingSnapshot() const
{
    std::map<std::string, StreamingHistogram::Snapshot> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, histogram] : streaming_)
        out.emplace(name, histogram->snapshot());
    return out;
}

std::atomic<std::int64_t> &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<std::atomic<std::int64_t>>(0);
    return *slot;
}

std::map<std::string, std::int64_t>
MetricsRegistry::gaugeSnapshot() const
{
    std::map<std::string, std::int64_t> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, value] : gauges_)
        out.emplace(name, value->load(std::memory_order_relaxed));
    return out;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\"counters\":";
    writeAllCounters(os, counters_);
    os << ",\"timers\":";
    writeDistributionObject(os, timerSnapshot(), "_ms");
    os << ",\"histograms\":";
    writeDistributionObject(os, histogramSnapshot(), "");
    os << ",\"streaming\":{";
    bool first = true;
    for (const auto &[name, snapshot] : streamingSnapshot()) {
        if (!first)
            os << ",";
        first = false;
        writeJsonQuoted(os, name);
        os << ":";
        writeHistogramSummary(os, summarizeHistogram(snapshot));
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gaugeSnapshot()) {
        if (!first)
            os << ",";
        first = false;
        writeJsonQuoted(os, name);
        os << ":" << value;
    }
    os << "}}";
}

void
writeJsonQuoted(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeCounterObject(std::ostream &os, const CounterSet &stats,
                   const char *const *names, std::size_t count)
{
    // Sort a copy of the name list so the byte layout depends only on
    // the name set, never on call-site declaration order.
    std::vector<const char *> sorted(names, names + count);
    std::sort(sorted.begin(), sorted.end(),
              [](const char *a, const char *b) {
                  return std::strcmp(a, b) < 0;
              });
    os << "{";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << sorted[i] << "\":" << stats.get(sorted[i]);
    }
    os << "}";
}

void
writeHistogramSummary(std::ostream &os, const HistogramSummary &summary)
{
    os << "{\"count\":" << summary.count << ",\"mean\":" << summary.mean
       << ",\"p50\":" << summary.p50 << ",\"p90\":" << summary.p90
       << ",\"p99\":" << summary.p99 << ",\"p999\":" << summary.p999
       << ",\"max\":" << summary.max << "}";
}

void
writeAllCounters(std::ostream &os, const CounterSet &stats)
{
    os << "{";
    bool first = true;
    stats.forEach([&](const std::string &name, std::uint64_t value) {
        if (!first)
            os << ",";
        first = false;
        writeJsonQuoted(os, name);
        os << ":" << value;
    });
    os << "}";
}

} // namespace cs
