/**
 * @file
 * Unified metrics surface for the front-ends and benches: one
 * registry holding named counters (a CounterSet), timers, and value
 * histograms behind a single snapshot/JSON API, plus the low-level
 * JSON writers the bench harnesses use so nobody hand-rolls stats
 * blocks.
 *
 * Counters are monotonically increasing integers ("ops_scheduled").
 * Timers and histograms are both sample distributions — a timer's
 * samples are milliseconds, a histogram's are dimensionless values —
 * summarized as count/total/p50/p95/max on export.
 */

#ifndef CS_SUPPORT_METRICS_HPP
#define CS_SUPPORT_METRICS_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace cs {

/** Five-number summary of one timer or histogram. */
struct DistributionStats
{
    std::uint64_t count = 0;
    double total = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
};

class MetricsRegistry
{
  public:
    /** The counter side; bump via counters().bump(...) or merge a
     * scheduler's CounterSet in wholesale. */
    CounterSet &counters() { return counters_; }
    const CounterSet &counters() const { return counters_; }

    /** Record one timer sample, in milliseconds. */
    void recordTimeMs(const std::string &name, double ms);

    /** Record one histogram sample (dimensionless). */
    void recordValue(const std::string &name, double value);

    /** Consistent summaries of every timer, keyed by name. */
    std::map<std::string, DistributionStats> timerSnapshot() const;

    /** Consistent summaries of every histogram, keyed by name. */
    std::map<std::string, DistributionStats> histogramSnapshot() const;

    /**
     * Emit the whole registry as one JSON object:
     *
     *   {"counters":{...},
     *    "timers":{"name":{"count":..,"total_ms":..,"p50_ms":..,
     *                      "p95_ms":..,"max_ms":..},...},
     *    "histograms":{"name":{"count":..,"total":..,"p50":..,
     *                          "p95":..,"max":..},...}}
     */
    void writeJson(std::ostream &os) const;

  private:
    CounterSet counters_;
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<double>> timers_;
    std::map<std::string, std::vector<double>> histograms_;
};

/** Summarize one sample set (sorts a copy). */
DistributionStats summarizeDistribution(std::vector<double> samples);

/** JSON-escape and quote @p s onto @p os. */
void writeJsonQuoted(std::ostream &os, const std::string &s);

/**
 * Write the named counters of @p stats as a JSON object in exactly
 * the given order: {"a":1,"b":2}. Absent counters print as 0. This is
 * the bench harnesses' stable emission format — BENCH_sched.json and
 * bench/perf_smoke.py parse it — so the byte layout must not change.
 */
void writeCounterObject(std::ostream &os, const CounterSet &stats,
                        const char *const *names, std::size_t count);

template <std::size_t N>
void
writeCounterObject(std::ostream &os, const CounterSet &stats,
                   const char *const (&names)[N])
{
    writeCounterObject(os, stats, names, N);
}

/** Write every counter of @p stats, in name order, as a JSON object. */
void writeAllCounters(std::ostream &os, const CounterSet &stats);

} // namespace cs

#endif // CS_SUPPORT_METRICS_HPP
