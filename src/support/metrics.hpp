/**
 * @file
 * Unified metrics surface for the front-ends and benches: one
 * registry holding named counters (a CounterSet), timers, and value
 * histograms behind a single snapshot/JSON API, plus the low-level
 * JSON writers the bench harnesses use so nobody hand-rolls stats
 * blocks.
 *
 * Counters are monotonically increasing integers ("ops_scheduled").
 * Timers and histograms are both sample distributions — a timer's
 * samples are milliseconds, a histogram's are dimensionless values —
 * summarized as count/total/p50/p95/max on export. Streaming
 * histograms (support/histogram.hpp) are the hot-path variant:
 * fixed-footprint, wait-free to record, snapshot-able from a sampler
 * thread while workers keep recording. Gauges are point-in-time
 * signed levels ("serve.inflight") read and written atomically.
 */

#ifndef CS_SUPPORT_METRICS_HPP
#define CS_SUPPORT_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/histogram.hpp"
#include "support/stats.hpp"

namespace cs {

/** Five-number summary of one timer or histogram. */
struct DistributionStats
{
    std::uint64_t count = 0;
    double total = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
};

class MetricsRegistry
{
  public:
    /** The counter side; bump via counters().bump(...) or merge a
     * scheduler's CounterSet in wholesale. */
    CounterSet &counters() { return counters_; }
    const CounterSet &counters() const { return counters_; }

    /** Record one timer sample, in milliseconds. */
    void recordTimeMs(const std::string &name, double ms);

    /** Record one histogram sample (dimensionless). */
    void recordValue(const std::string &name, double value);

    /** Consistent summaries of every timer, keyed by name. */
    std::map<std::string, DistributionStats> timerSnapshot() const;

    /** Consistent summaries of every histogram, keyed by name. */
    std::map<std::string, DistributionStats> histogramSnapshot() const;

    /**
     * Named streaming histogram, created on first use. The reference
     * is stable for the registry's lifetime (unique_ptr storage), so
     * hot paths resolve the name once and record lock-free after.
     */
    StreamingHistogram &streamingHistogram(const std::string &name);

    /** Snapshots of every streaming histogram, keyed by name. */
    std::map<std::string, StreamingHistogram::Snapshot>
    streamingSnapshot() const;

    /**
     * Named gauge (signed level, e.g. in-flight depth), created on
     * first use at 0. Stable reference; read/write with atomic ops.
     */
    std::atomic<std::int64_t> &gauge(const std::string &name);

    /** Current value of every gauge, keyed by name. */
    std::map<std::string, std::int64_t> gaugeSnapshot() const;

    /**
     * Emit the whole registry as one JSON object:
     *
     *   {"counters":{...},
     *    "timers":{"name":{"count":..,"total_ms":..,"p50_ms":..,
     *                      "p95_ms":..,"max_ms":..},...},
     *    "histograms":{"name":{"count":..,"total":..,"p50":..,
     *                          "p95":..,"max":..},...},
     *    "streaming":{"name":{"count":..,"mean":..,"p50":..,"p90":..,
     *                         "p99":..,"p999":..,"max":..},...},
     *    "gauges":{"name":value,...}}
     */
    void writeJson(std::ostream &os) const;

  private:
    CounterSet counters_;
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<double>> timers_;
    std::map<std::string, std::vector<double>> histograms_;
    std::map<std::string, std::unique_ptr<StreamingHistogram>>
        streaming_;
    std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>>
        gauges_;
};

/** Summarize one sample set (sorts a copy). */
DistributionStats summarizeDistribution(std::vector<double> samples);

/** JSON-escape and quote @p s onto @p os. */
void writeJsonQuoted(std::ostream &os, const std::string &s);

/**
 * Write the named counters of @p stats as a JSON object in sorted
 * key order: {"a":1,"b":2}. Absent counters print as 0. Sorting is
 * deliberate: every call site (cs_serve statsJson, cs_batch/cs_sweep
 * --json, the bench harnesses) emits the same byte layout for the
 * same name set regardless of the order the caller listed them in,
 * so diffs of BENCH_sched.json and stats dumps never churn on
 * emission order. Pinned by MetricsJson.CounterObjectSortsKeys.
 */
void writeCounterObject(std::ostream &os, const CounterSet &stats,
                        const char *const *names, std::size_t count);

template <std::size_t N>
void
writeCounterObject(std::ostream &os, const CounterSet &stats,
                   const char *const (&names)[N])
{
    writeCounterObject(os, stats, names, N);
}

/** Write every counter of @p stats, in name order, as a JSON object. */
void writeAllCounters(std::ostream &os, const CounterSet &stats);

/**
 * Write one streaming-histogram summary as a JSON object:
 * {"count":..,"mean":..,"p50":..,"p90":..,"p99":..,"p999":..,"max":..}
 * (quantiles in the histogram's recorded unit, integers).
 */
void writeHistogramSummary(std::ostream &os,
                           const HistogramSummary &summary);

} // namespace cs

#endif // CS_SUPPORT_METRICS_HPP
