/**
 * @file
 * Read-only memory-mapped file view for the serving hot path.
 *
 * MmapFile wraps open(2) + mmap(2) with the lifetime rules the
 * persistent cache needs (DESIGN.md §5h):
 *
 *  - The mapping is a *snapshot of length*: it covers [0, size()) where
 *    size() is the file size at map (or last remap) time. Bytes
 *    appended to the file afterwards are not visible until remap().
 *  - Touching pages wholly past the file's current EOF raises SIGBUS,
 *    so callers must never read past a region they know is stable.
 *    The cache guarantees this by only dereferencing offsets bounded
 *    by its validated records region, which no writer ever truncates
 *    below (appenders only ever cut the *footer*, which sits after it).
 *  - remap() re-stats the file and maps the new length, invalidating
 *    previous data() pointers. Callers serialize remap() against reads
 *    themselves (the cache does both under the per-shard mutex).
 *
 * mmap failure is not fatal: valid() turns false and callers fall back
 * to pread(2). That keeps exotic filesystems working, just without the
 * zero-copy read path.
 */

#ifndef CS_SUPPORT_MMAP_FILE_HPP
#define CS_SUPPORT_MMAP_FILE_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace cs {

/** Read-only mmap view of a file; see the file comment for lifetime. */
class MmapFile
{
  public:
    MmapFile() = default;
    ~MmapFile() { reset(); }

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    MmapFile(MmapFile &&other) noexcept { *this = std::move(other); }
    MmapFile &
    operator=(MmapFile &&other) noexcept
    {
        if (this != &other) {
            reset();
            data_ = other.data_;
            size_ = other.size_;
            other.data_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }

    /**
     * Map @p fd (which stays owned by the caller) at its current
     * length. An empty file maps successfully with size() == 0.
     * Returns false (and valid() == false) when mmap itself fails.
     */
    bool
    map(int fd)
    {
        reset();
        struct stat st{};
        if (::fstat(fd, &st) != 0 || st.st_size < 0)
            return false;
        size_ = static_cast<std::size_t>(st.st_size);
        if (size_ == 0) {
            data_ = nullptr;
            mapped_ = true;
            return true;
        }
        void *p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
        if (p == MAP_FAILED) {
            size_ = 0;
            return false;
        }
        data_ = static_cast<const std::uint8_t *>(p);
        mapped_ = true;
        return true;
    }

    /** Drop the old view and map the file's current length. */
    bool remap(int fd) { return map(fd); }

    /** A view exists (possibly empty). */
    bool valid() const { return mapped_; }

    const std::uint8_t *data() const { return data_; }

    /** Mapped length: the file size at map()/remap() time. */
    std::size_t size() const { return size_; }

    void
    reset()
    {
        if (data_ != nullptr)
            ::munmap(const_cast<std::uint8_t *>(data_), size_);
        data_ = nullptr;
        size_ = 0;
        mapped_ = false;
    }

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
};

} // namespace cs

#endif // CS_SUPPORT_MMAP_FILE_HPP
