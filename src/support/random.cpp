#include "support/random.hpp"

#include "support/logging.hpp"

namespace cs {

std::uint64_t
Rng::next()
{
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    CS_ASSERT(lo <= hi, "uniformInt bounds inverted: ", lo, " > ", hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::uniformDouble()
{
    // 53 bits of mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformDouble(double lo, double hi)
{
    return lo + (hi - lo) * uniformDouble();
}

bool
Rng::chance(double p)
{
    return uniformDouble() < p;
}

} // namespace cs
