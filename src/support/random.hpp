/**
 * @file
 * Deterministic pseudo-random number generation used by kernel input
 * generators and property tests. A fixed algorithm (splitmix64/xoshiro-
 * style) rather than std::mt19937 so streams are identical across
 * standard libraries.
 */

#ifndef CS_SUPPORT_RANDOM_HPP
#define CS_SUPPORT_RANDOM_HPP

#include <cstdint>
#include <vector>

namespace cs {

/** A small, fast, reproducible PRNG (splitmix64 core). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Uniform double in [lo, hi). */
    double uniformDouble(double lo, double hi);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            auto j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    std::uint64_t state_;
};

} // namespace cs

#endif // CS_SUPPORT_RANDOM_HPP
