#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace cs {

double
geometricMean(const std::vector<double> &values)
{
    CS_ASSERT(!values.empty(), "geometric mean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        CS_ASSERT(v > 0.0, "geometric mean requires positive values, got ",
                  v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
minOf(const std::vector<double> &values)
{
    CS_ASSERT(!values.empty(), "min of empty set");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    CS_ASSERT(!values.empty(), "max of empty set");
    return *std::max_element(values.begin(), values.end());
}

CounterSet::CounterSet(const CounterSet &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    counters_ = other.counters_;
}

CounterSet &
CounterSet::operator=(const CounterSet &other)
{
    if (this == &other)
        return *this;
    // scoped_lock's deadlock-avoiding acquisition covers two threads
    // assigning in opposite directions.
    std::scoped_lock lock(mutex_, other.mutex_);
    counters_ = other.counters_;
    return *this;
}

void
CounterSet::bump(const std::string &name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

std::uint64_t
CounterSet::get(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
CounterSet::merge(const CounterSet &other)
{
    // Copy first so self-merge and opposite-direction merges cannot
    // deadlock on the two locks.
    std::map<std::string, std::uint64_t> theirs = other.snapshot();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, value] : theirs)
        counters_[name] += value;
}

void
CounterSet::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
}

std::map<std::string, std::uint64_t>
CounterSet::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace cs
