#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace cs {

double
geometricMean(const std::vector<double> &values)
{
    CS_ASSERT(!values.empty(), "geometric mean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        CS_ASSERT(v > 0.0, "geometric mean requires positive values, got ",
                  v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
minOf(const std::vector<double> &values)
{
    CS_ASSERT(!values.empty(), "min of empty set");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    CS_ASSERT(!values.empty(), "max of empty set");
    return *std::max_element(values.begin(), values.end());
}

void
CounterSet::bump(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

std::uint64_t
CounterSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
CounterSet::clear()
{
    counters_.clear();
}

} // namespace cs
