/**
 * @file
 * Small numeric helpers used by the benchmark harnesses: geometric mean
 * (the paper's Figure 29 aggregates per-kernel speedups this way),
 * arithmetic summaries, and a simple named counter set for scheduler
 * statistics.
 */

#ifndef CS_SUPPORT_STATS_HPP
#define CS_SUPPORT_STATS_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cs {

/** Geometric mean of a set of strictly positive values. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean; zero for an empty set. */
double arithmeticMean(const std::vector<double> &values);

/** Minimum of a non-empty set. */
double minOf(const std::vector<double> &values);

/** Maximum of a non-empty set. */
double maxOf(const std::vector<double> &values);

/**
 * A set of named monotonically increasing counters. Schedulers expose one
 * of these so tests and benches can observe effort (operations scheduled,
 * copies inserted, permutations searched, backtracks taken, ...).
 *
 * Thread safety: every member is safe to call concurrently from
 * multiple threads (the pipeline layer aggregates job statistics into
 * one shared CounterSet). Iteration goes through forEach() or
 * snapshot(), both of which hold the lock — there is no unguarded
 * accessor.
 */
class CounterSet
{
  public:
    CounterSet() = default;
    CounterSet(const CounterSet &other);
    CounterSet &operator=(const CounterSet &other);

    /** Add delta to the named counter, creating it at zero if absent. */
    void bump(const std::string &name, std::uint64_t delta = 1);

    /** Current value of the named counter (zero if never bumped). */
    std::uint64_t get(const std::string &name) const;

    /** Add every counter of @p other into this set. */
    void merge(const CounterSet &other);

    /** Reset every counter to zero. */
    void clear();

    /** Consistent copy of all counters, taken under the lock. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /**
     * Visit every counter in name order under the lock. @p fn must
     * not call back into this CounterSet (the lock is held).
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, value] : counters_)
            fn(name, value);
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace cs

#endif // CS_SUPPORT_STATS_HPP
