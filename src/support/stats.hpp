/**
 * @file
 * Small numeric helpers used by the benchmark harnesses: geometric mean
 * (the paper's Figure 29 aggregates per-kernel speedups this way),
 * arithmetic summaries, and a simple named counter set for scheduler
 * statistics.
 */

#ifndef CS_SUPPORT_STATS_HPP
#define CS_SUPPORT_STATS_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cs {

/** Geometric mean of a set of strictly positive values. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean; zero for an empty set. */
double arithmeticMean(const std::vector<double> &values);

/** Minimum of a non-empty set. */
double minOf(const std::vector<double> &values);

/** Maximum of a non-empty set. */
double maxOf(const std::vector<double> &values);

/**
 * A set of named monotonically increasing counters. Schedulers expose one
 * of these so tests and benches can observe effort (operations scheduled,
 * copies inserted, permutations searched, backtracks taken, ...).
 *
 * Thread safety: bump(), get(), merge(), snapshot(), and clear() are
 * safe to call concurrently from multiple threads (the pipeline layer
 * aggregates job statistics into one shared CounterSet). all() returns
 * an unguarded reference and may only be used once concurrent writers
 * have quiesced — the existing single-threaded call sites keep working
 * unchanged.
 */
class CounterSet
{
  public:
    CounterSet() = default;
    CounterSet(const CounterSet &other);
    CounterSet &operator=(const CounterSet &other);

    /** Add delta to the named counter, creating it at zero if absent. */
    void bump(const std::string &name, std::uint64_t delta = 1);

    /** Current value of the named counter (zero if never bumped). */
    std::uint64_t get(const std::string &name) const;

    /** Add every counter of @p other into this set. */
    void merge(const CounterSet &other);

    /** Reset every counter to zero. */
    void clear();

    /** Consistent copy of all counters, taken under the lock. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /**
     * All counters in name order, for printing. Not safe against
     * concurrent bump()s; use snapshot() when writers may be live.
     */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace cs

#endif // CS_SUPPORT_STATS_HPP
