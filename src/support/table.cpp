#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "support/logging.hpp"

namespace cs {

namespace {

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    bool digit_seen = false;
    for (char c : cell) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit_seen = true;
        } else if (c != '.' && c != '-' && c != '+' && c != '%' &&
                   c != 'e' && c != 'x') {
            return false;
        }
    }
    return digit_seen;
}

} // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CS_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    CS_ASSERT(cells.size() == headers_.size(), "row has ", cells.size(),
              " cells, table has ", headers_.size(), " columns");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            bool right = looksNumeric(row[c]);
            os << (right ? std::right : std::left)
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << " |\n";
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
    }
    os << "-|\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

std::string
textBar(double fraction, int width)
{
    fraction = std::clamp(fraction, 0.0, 1.0);
    int filled = static_cast<int>(fraction * width + 0.5);
    return std::string(filled, '#') + std::string(width - filled, ' ');
}

} // namespace cs
