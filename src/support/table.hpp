/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Every
 * reproduced paper table/figure is printed through this so that the
 * bench output is uniform and diffable.
 */

#ifndef CS_SUPPORT_TABLE_HPP
#define CS_SUPPORT_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace cs {

/**
 * A simple left/right-aligned text table. Numeric-looking cells are
 * right-aligned; everything else is left-aligned. Column widths adapt to
 * content.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double value, int precision = 2);

    /** Render with a header rule and column separators. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner used between bench sub-results. */
void printBanner(std::ostream &os, const std::string &title);

/**
 * Render a unit-interval value as a text bar (the paper's Figures 25-29
 * are bar charts); used so bench output visually mirrors the figures.
 */
std::string textBar(double fraction, int width = 40);

} // namespace cs

#endif // CS_SUPPORT_TABLE_HPP
