#include "support/telemetry.hpp"

#include <cstdio>

#include <unistd.h>

#include "support/metrics.hpp"

namespace cs {

std::uint64_t
readRssKb()
{
    // /proc/self/statm: "size resident shared text lib data dt" in
    // pages; field 2 is the resident set.
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long size = 0, resident = 0;
    int matched = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (matched != 2)
        return 0;
    long pageSize = ::sysconf(_SC_PAGESIZE);
    if (pageSize <= 0)
        pageSize = 4096;
    return static_cast<std::uint64_t>(resident) *
           static_cast<std::uint64_t>(pageSize) / 1024u;
}

bool
TelemetrySampler::start(const TelemetryConfig &config,
                        CounterFn counters, ExtraFn extra)
{
    stop();
    out_.open(config.path, std::ios::trunc);
    if (!out_)
        return false;
    config_ = config;
    counters_ = std::move(counters);
    extra_ = std::move(extra);
    stop_ = false;
    seq_ = 0;
    previous_.clear();
    start_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
TelemetrySampler::stop()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    out_.close();
}

void
TelemetrySampler::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        bool stopping = cv_.wait_for(
            lock, std::chrono::milliseconds(config_.intervalMs),
            [this] { return stop_; });
        // One sample per wake, including the final one on stop, so
        // the file always ends with the end state.
        writeSample();
        if (stopping)
            return;
    }
}

void
TelemetrySampler::writeSample()
{
    auto now = std::chrono::steady_clock::now();
    auto tMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                   now - start_)
                   .count();
    CounterSet counters = counters_ ? counters_() : CounterSet();
    std::map<std::string, std::uint64_t> current;
    counters.forEach([&](const std::string &name, std::uint64_t value) {
        current.emplace(name, value);
    });

    out_ << "{\"seq\":" << seq_++ << ",\"t_ms\":" << tMs
         << ",\"rss_kb\":" << readRssKb() << ",\"counters\":";
    writeAllCounters(out_, counters);
    out_ << ",\"deltas\":{";
    bool first = true;
    for (const auto &[name, value] : current) {
        auto it = previous_.find(name);
        std::uint64_t before = it == previous_.end() ? 0 : it->second;
        if (value == before)
            continue;
        if (!first)
            out_ << ",";
        first = false;
        writeJsonQuoted(out_, name);
        // Counters are monotone in practice, but a snapshot race can
        // present a transient decrease; clamp at 0 so deltas stay
        // non-negative.
        out_ << ":" << (value > before ? value - before : 0);
    }
    out_ << "}";
    previous_ = std::move(current);
    if (extra_)
        extra_(out_);
    out_ << "}\n" << std::flush;
}

} // namespace cs
