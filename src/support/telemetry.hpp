/**
 * @file
 * Time-series telemetry sampler: a background thread that appends one
 * JSONL snapshot of a process's counters and resource footprint to a
 * file every N ms, so a long soak can be watched (and asserted on)
 * instead of inspected post-hoc.
 *
 * Each line is one self-contained JSON object:
 *
 *   {"seq":3,"t_ms":750,"rss_kb":41288,
 *    "counters":{...cumulative, sorted...},
 *    "deltas":{...only the counters that changed since the previous
 *              line...}
 *    <extra fields from the owner: shard sizes, quantiles, gauges>}
 *
 * The counter snapshot comes from a caller-supplied closure, so one
 * sampler works for the server (serve + pipeline + cache counters),
 * cs_batch, and cs_sweep alike; the optional extras closure appends
 * leading-comma JSON fields for owner-specific state. Both closures
 * run on the sampler thread — they must be safe to call concurrently
 * with the workers (CounterSet snapshots and the registry's streaming
 * histograms are).
 *
 * Shutdown contract: stop() (and the destructor) wakes the thread,
 * writes one final sample, flushes, and joins — the last line of the
 * file always reflects the end state, and no partial line is ever
 * left behind (every sample is written and flushed whole).
 */

#ifndef CS_SUPPORT_TELEMETRY_HPP
#define CS_SUPPORT_TELEMETRY_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "support/stats.hpp"

namespace cs {

/** Resident set size in KiB from /proc/self/statm (0 on failure). */
std::uint64_t readRssKb();

struct TelemetryConfig
{
    std::string path;        ///< JSONL output file (truncated).
    unsigned intervalMs = 250; ///< Sample period.
};

class TelemetrySampler
{
  public:
    /** Cumulative counter snapshot (called on the sampler thread). */
    using CounterFn = std::function<CounterSet()>;
    /** Extra per-line JSON fields; must write leading commas:
     *  `,"key":value`. */
    using ExtraFn = std::function<void(std::ostream &)>;

    TelemetrySampler() = default;
    ~TelemetrySampler() { stop(); }
    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /**
     * Open @p config.path and start sampling. Returns false (without
     * starting) if the file cannot be opened. @p extra may be empty.
     */
    bool start(const TelemetryConfig &config, CounterFn counters,
               ExtraFn extra = {});

    /** Final sample + flush + join. Idempotent; the destructor calls
     *  it. */
    void stop();

    bool running() const { return thread_.joinable(); }

  private:
    void loop();
    void writeSample();

    TelemetryConfig config_;
    CounterFn counters_;
    ExtraFn extra_;
    std::ofstream out_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
    std::uint64_t seq_ = 0;
    std::chrono::steady_clock::time_point start_;
    std::map<std::string, std::uint64_t> previous_;
};

} // namespace cs

#endif // CS_SUPPORT_TELEMETRY_HPP
