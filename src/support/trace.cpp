#include "support/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>

namespace cs {
namespace trace {

namespace {

/**
 * One ring-buffer slot, a per-slot seqlock. The owning thread writes
 * seq = 0 (claim), then the payload words, then seq = ticket + 1
 * (publish, release). A drainer accepts the slot only if seq reads
 * ticket + 1 both before and after copying the payload; an overwrite
 * racing the copy flips seq and the drainer discards. Payload words
 * are themselves atomics so the race window is defined behavior.
 */
struct Slot
{
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> word[5];
};

constexpr std::size_t kCapacity = 1u << 16; // 64Ki events/thread, ~3.1 MiB

/**
 * Payload encoding (5 x u64):
 *   word[0]  bits 0-7   EventKind
 *            bits 8-23  name id
 *            bits 24-31 arg count
 *            bits 32-47 arg0 name id
 *            bits 48-63 arg1 name id
 *   word[1]  tsNs   word[2] durNs   word[3] arg0   word[4] arg1
 */
std::uint64_t
packHeader(EventKind kind, std::uint16_t name, std::uint8_t argCount,
           std::uint16_t argName0, std::uint16_t argName1)
{
    return static_cast<std::uint64_t>(kind) |
           (static_cast<std::uint64_t>(name) << 8) |
           (static_cast<std::uint64_t>(argCount) << 24) |
           (static_cast<std::uint64_t>(argName0) << 32) |
           (static_cast<std::uint64_t>(argName1) << 48);
}

struct ThreadBuffer
{
    explicit ThreadBuffer(std::uint32_t tid)
        : tid(tid), slots(new Slot[kCapacity])
    {}

    const std::uint32_t tid;
    std::unique_ptr<Slot[]> slots;
    /** Next write ticket; monotonically increasing. Writer-owned,
     * drained with acquire so published slots are visible. */
    std::atomic<std::uint64_t> head{0};
    /** Tickets below this are logically cleared (drain-side only). */
    std::atomic<std::uint64_t> drainFloor{0};

    void
    emit(EventKind kind, std::uint16_t name, std::int64_t tsNs,
         std::int64_t durNs, std::uint8_t argCount, std::uint16_t argName0,
         std::int64_t arg0, std::uint16_t argName1, std::int64_t arg1)
    {
        std::uint64_t ticket = head.load(std::memory_order_relaxed);
        Slot &slot = slots[ticket & (kCapacity - 1)];
        // Claim: invalidates the old generation for concurrent drains.
        // The release fence orders the claim before the payload stores
        // (fence/fence seqlock idiom, pairing with the acquire fence in
        // decodeSlot): a drainer that observed any new payload word is
        // guaranteed to see seq != old generation on its re-check.
        slot.seq.store(0, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        slot.word[0].store(
            packHeader(kind, name, argCount, argName0, argName1),
            std::memory_order_relaxed);
        slot.word[1].store(static_cast<std::uint64_t>(tsNs),
                           std::memory_order_relaxed);
        slot.word[2].store(static_cast<std::uint64_t>(durNs),
                           std::memory_order_relaxed);
        slot.word[3].store(static_cast<std::uint64_t>(arg0),
                           std::memory_order_relaxed);
        slot.word[4].store(static_cast<std::uint64_t>(arg1),
                           std::memory_order_relaxed);
        // Publish payload under the new generation, then advance head.
        slot.seq.store(ticket + 1, std::memory_order_release);
        head.store(ticket + 1, std::memory_order_release);
    }
};

/**
 * Process-wide collector. Owns every thread buffer for the life of
 * the process (threads may die while their events are still
 * undrained, so buffers are never reclaimed).
 */
struct Collector
{
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;

    ThreadBuffer *
    registerThread()
    {
        std::lock_guard<std::mutex> lock(mutex);
        buffers.push_back(std::make_unique<ThreadBuffer>(
            static_cast<std::uint32_t>(buffers.size())));
        return buffers.back().get();
    }
};

Collector &
collector()
{
    static Collector c;
    return c;
}

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer *buffer = collector().registerThread();
    return *buffer;
}

/** Interning table: id -> name lookup is lock-free after insert via a
 * stable deque-like store; string -> id goes through the mutex. */
struct InternTable
{
    static constexpr std::uint16_t kOverflowId = 0;

    InternTable()
    {
        names.reserve(256);
        names.push_back(
            std::make_unique<std::string>("<overflow>"));
    }

    std::mutex mutex;
    std::vector<std::unique_ptr<std::string>> names;
    std::unordered_map<std::string_view, std::uint16_t> ids;

    std::uint16_t
    intern(std::string_view name)
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = ids.find(name);
        if (it != ids.end())
            return it->second;
        if (names.size() > 0xfffe)
            return kOverflowId;
        names.push_back(std::make_unique<std::string>(name));
        std::uint16_t id = static_cast<std::uint16_t>(names.size() - 1);
        ids.emplace(*names.back(), id);
        return id;
    }

    const std::string &
    lookup(std::uint16_t id)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (id >= names.size())
            return *names[kOverflowId];
        return *names[id];
    }
};

InternTable &
internTable()
{
    static InternTable table;
    return table;
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

void
decodeSlot(const ThreadBuffer &buffer, std::uint64_t ticket, Event &out,
           bool &ok)
{
    const Slot &slot = buffer.slots[ticket & (kCapacity - 1)];
    if (slot.seq.load(std::memory_order_acquire) != ticket + 1) {
        ok = false;
        return;
    }
    std::uint64_t w0 = slot.word[0].load(std::memory_order_relaxed);
    std::uint64_t w1 = slot.word[1].load(std::memory_order_relaxed);
    std::uint64_t w2 = slot.word[2].load(std::memory_order_relaxed);
    std::uint64_t w3 = slot.word[3].load(std::memory_order_relaxed);
    std::uint64_t w4 = slot.word[4].load(std::memory_order_relaxed);
    // Re-check the generation: if an overwrite raced the copy above,
    // the payload words may be torn across generations — discard.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != ticket + 1) {
        ok = false;
        return;
    }
    out.kind = static_cast<EventKind>(w0 & 0xff);
    out.name = static_cast<std::uint16_t>((w0 >> 8) & 0xffff);
    out.argCount = static_cast<std::uint8_t>((w0 >> 24) & 0xff);
    out.args[0] = {static_cast<std::uint16_t>((w0 >> 32) & 0xffff),
                   static_cast<std::int64_t>(w3)};
    out.args[1] = {static_cast<std::uint16_t>((w0 >> 48) & 0xffff),
                   static_cast<std::int64_t>(w4)};
    out.tsNs = static_cast<std::int64_t>(w1);
    out.durNs = static_cast<std::int64_t>(w2);
    out.tid = buffer.tid;
    ok = true;
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

std::uint16_t
internName(std::string_view name)
{
    return internTable().intern(name);
}

const std::string &
nameOf(std::uint16_t id)
{
    return internTable().lookup(id);
}

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - traceEpoch())
        .count();
}

std::size_t
threadBufferCapacity()
{
    return kCapacity;
}

void
emitSpan(std::uint16_t name, std::int64_t tsNs, std::int64_t durNs,
         std::uint8_t argCount, std::uint16_t argName0, std::int64_t arg0,
         std::uint16_t argName1, std::int64_t arg1)
{
    threadBuffer().emit(EventKind::Span, name, tsNs, durNs, argCount,
                        argName0, arg0, argName1, arg1);
}

void
emitInstant(std::uint16_t name, std::uint8_t argCount,
            std::uint16_t argName0, std::int64_t arg0,
            std::uint16_t argName1, std::int64_t arg1)
{
    threadBuffer().emit(EventKind::Instant, name, nowNs(), 0, argCount,
                        argName0, arg0, argName1, arg1);
}

std::vector<Event>
drain()
{
    // Snapshot the buffer list under the registry lock; the buffers
    // themselves are drained lock-free.
    std::vector<ThreadBuffer *> buffers;
    {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        buffers.reserve(c.buffers.size());
        for (auto &b : c.buffers)
            buffers.push_back(b.get());
    }

    std::vector<Event> events;
    for (ThreadBuffer *buffer : buffers) {
        std::uint64_t head = buffer->head.load(std::memory_order_acquire);
        std::uint64_t floor =
            buffer->drainFloor.load(std::memory_order_acquire);
        std::uint64_t first =
            head > kCapacity ? head - kCapacity : 0;
        first = std::max(first, floor);
        for (std::uint64_t t = first; t < head; ++t) {
            Event event;
            bool ok = false;
            decodeSlot(*buffer, t, event, ok);
            if (ok)
                events.push_back(event);
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.tsNs < b.tsNs;
                     });
    return events;
}

void
clear()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    for (auto &buffer : c.buffers) {
        buffer->drainFloor.store(
            buffer->head.load(std::memory_order_acquire),
            std::memory_order_release);
    }
}

void
exportChromeTrace(std::ostream &os, const std::vector<Event> &events)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":";
        writeJsonString(os, nameOf(e.name));
        os << ",\"ph\":\""
           << (e.kind == EventKind::Span ? 'X' : 'i') << '"';
        // Chrome wants microseconds; keep sub-microsecond precision as
        // a fraction (the viewer accepts doubles).
        os << ",\"ts\":" << (e.tsNs / 1000) << '.' << ((e.tsNs % 1000) / 100);
        if (e.kind == EventKind::Span)
            os << ",\"dur\":" << (e.durNs / 1000) << '.'
               << ((e.durNs % 1000) / 100);
        else
            os << ",\"s\":\"t\"";
        os << ",\"pid\":1,\"tid\":" << e.tid;
        if (e.argCount > 0) {
            os << ",\"args\":{";
            for (std::uint8_t i = 0; i < e.argCount && i < 2; ++i) {
                if (i)
                    os << ",";
                writeJsonString(os, nameOf(e.args[i].first));
                os << ":" << e.args[i].second;
            }
            os << "}";
        }
        os << "}";
    }
    os << "]}\n";
}

void
exportChromeTrace(std::ostream &os)
{
    exportChromeTrace(os, drain());
}

std::vector<SpanStats>
aggregateSpans(const std::vector<Event> &events)
{
    std::map<std::uint16_t, std::vector<std::int64_t>> byName;
    for (const Event &e : events)
        if (e.kind == EventKind::Span)
            byName[e.name].push_back(e.durNs);

    std::vector<SpanStats> stats;
    stats.reserve(byName.size());
    for (auto &[name, durations] : byName) {
        std::sort(durations.begin(), durations.end());
        SpanStats s;
        s.name = nameOf(name);
        s.count = durations.size();
        std::int64_t total = 0;
        for (std::int64_t d : durations)
            total += d;
        auto pct = [&](double p) {
            std::size_t idx = static_cast<std::size_t>(
                p * static_cast<double>(durations.size() - 1) + 0.5);
            return static_cast<double>(durations[idx]) * 1e-6;
        };
        s.totalMs = static_cast<double>(total) * 1e-6;
        s.p50Ms = pct(0.50);
        s.p95Ms = pct(0.95);
        s.maxMs = static_cast<double>(durations.back()) * 1e-6;
        stats.push_back(std::move(s));
    }
    std::sort(stats.begin(), stats.end(),
              [](const SpanStats &a, const SpanStats &b) {
                  return a.totalMs > b.totalMs;
              });
    return stats;
}

} // namespace trace
} // namespace cs
