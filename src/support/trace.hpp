/**
 * @file
 * Low-overhead structured tracing for the scheduler: per-thread
 * lock-free ring buffers of fixed-size span/instant events, drained
 * into a process-wide collector and exported as Chrome trace_event
 * JSON (loads in chrome://tracing or Perfetto) or aggregated into
 * per-span timing statistics.
 *
 * Design:
 *
 *  - Each thread owns one ring buffer. The owning thread is the only
 *    writer; emission is a handful of relaxed atomic stores plus one
 *    release store publishing the slot — no locks, no allocation.
 *  - Every slot is a per-slot seqlock (a generation counter plus
 *    atomic payload words), so any thread may drain concurrently with
 *    live writers: a drain that races an overwrite simply discards
 *    that slot. All payload accesses go through atomics — the drain
 *    is data-race-free by construction (the TSan drain test pins
 *    this).
 *  - The ring wraps: when a buffer fills, the oldest events are
 *    overwritten and the newest are kept.
 *  - Event names and argument names are interned 16-bit ids; the
 *    CS_TRACE_* macros intern once per call site via a static local.
 *  - Runtime toggle: trace::setEnabled(true). When disabled (the
 *    default) every instrumentation point costs one relaxed load and
 *    a predictable branch; bench/perf_smoke.py gates that cost at 2%
 *    of the committed medians (DESIGN.md section 5e).
 *  - Compile-out: configure with -DCS_TRACING=OFF (which defines
 *    CS_TRACE_DISABLED) and the macros compile to nothing.
 *
 * Tracing is a pure observer: instrumentation only reads scheduler
 * state, so schedules with tracing enabled are byte-identical to
 * schedules with it disabled (tests/test_trace_equivalence.cpp holds
 * all 80 golden listings both ways).
 */

#ifndef CS_SUPPORT_TRACE_HPP
#define CS_SUPPORT_TRACE_HPP

#include <atomic>
#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cs {
namespace trace {

/** What one trace record describes. */
enum class EventKind : std::uint8_t {
    /** A closed interval: timestamp + duration (Chrome phase "X"). */
    Span = 0,
    /** A point in time (Chrome phase "i"). */
    Instant = 1,
};

/** One decoded event, as returned by drain(). */
struct Event
{
    EventKind kind = EventKind::Instant;
    /** Collector-assigned id of the emitting thread (dense from 0). */
    std::uint32_t tid = 0;
    /** Interned event name (nameOf() decodes). */
    std::uint16_t name = 0;
    /** Nanoseconds since the process trace epoch. */
    std::int64_t tsNs = 0;
    /** Span duration in nanoseconds (0 for instants). */
    std::int64_t durNs = 0;
    /** Typed integer arguments: (interned arg name, value). */
    std::uint8_t argCount = 0;
    std::array<std::pair<std::uint16_t, std::int64_t>, 2> args{};
};

/** Aggregated timing of one span name across a drained event set. */
struct SpanStats
{
    std::string name;
    std::uint64_t count = 0;
    double totalMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double maxMs = 0.0;
};

/** @name Runtime toggle */
/// @{

/** Enable/disable event emission process-wide (default: disabled). */
void setEnabled(bool on);

inline std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

/** The hot-path check: one relaxed load. */
inline bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}
/// @}

/** @name Name interning */
/// @{

/**
 * Intern a name, returning its stable 16-bit id. Thread-safe; the id
 * space saturates at 65534 distinct names (further names all map to
 * the shared "<overflow>" id rather than failing).
 */
std::uint16_t internName(std::string_view name);

/** Decode an interned id (valid for the life of the process). */
const std::string &nameOf(std::uint16_t id);
/// @}

/** @name Emission (called by the macros and RAII span below) */
/// @{

/** Nanoseconds since the process trace epoch (steady clock). */
std::int64_t nowNs();

/** Number of event slots in each per-thread ring buffer. */
std::size_t threadBufferCapacity();

void emitSpan(std::uint16_t name, std::int64_t tsNs, std::int64_t durNs,
              std::uint8_t argCount = 0, std::uint16_t argName0 = 0,
              std::int64_t arg0 = 0, std::uint16_t argName1 = 0,
              std::int64_t arg1 = 0);

void emitInstant(std::uint16_t name, std::uint8_t argCount = 0,
                 std::uint16_t argName0 = 0, std::int64_t arg0 = 0,
                 std::uint16_t argName1 = 0, std::int64_t arg1 = 0);
/// @}

/** @name Collection */
/// @{

/**
 * Snapshot every currently buffered event across all threads, sorted
 * by timestamp. Safe to call while other threads keep emitting:
 * events overwritten mid-read are discarded, newly emitted events may
 * or may not make the snapshot. Draining does not consume — two
 * quiescent drains return the same events.
 */
std::vector<Event> drain();

/**
 * Forget everything buffered so far (a floor per thread buffer; no
 * synchronization with live writers is needed). Events emitted after
 * clear() are unaffected.
 */
void clear();

/**
 * Serialize events as a Chrome trace_event JSON document
 * ({"traceEvents":[...]}): spans as phase "X" with microsecond
 * timestamps/durations, instants as thread-scoped phase "i",
 * arguments as an "args" object. Loads directly in chrome://tracing
 * and Perfetto.
 */
void exportChromeTrace(std::ostream &os, const std::vector<Event> &events);

/** drain() + exportChromeTrace() in one call. */
void exportChromeTrace(std::ostream &os);

/**
 * Per-name timing summary of the spans in @p events (instants are
 * ignored), sorted by total time descending — the "hottest span"
 * order the cs_explain front-end prints.
 */
std::vector<SpanStats> aggregateSpans(const std::vector<Event> &events);
/// @}

/**
 * RAII span: records the start time on construction, emits one Span
 * event covering the enclosing scope on destruction. When tracing is
 * disabled at construction the destructor emits nothing — including
 * when tracing got enabled mid-span (a half-observed span would lie).
 */
class Scope
{
  public:
    explicit Scope(std::uint16_t name)
    {
        if (enabled()) {
            name_ = name;
            start_ = nowNs();
        }
    }

    Scope(std::uint16_t name, std::uint16_t argName0, std::int64_t arg0)
        : Scope(name)
    {
        argCount_ = 1;
        argName0_ = argName0;
        arg0_ = arg0;
    }

    Scope(std::uint16_t name, std::uint16_t argName0, std::int64_t arg0,
          std::uint16_t argName1, std::int64_t arg1)
        : Scope(name)
    {
        argCount_ = 2;
        argName0_ = argName0;
        arg0_ = arg0;
        argName1_ = argName1;
        arg1_ = arg1;
    }

    ~Scope()
    {
        if (start_ >= 0) {
            emitSpan(name_, start_, nowNs() - start_, argCount_,
                     argName0_, arg0_, argName1_, arg1_);
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    std::int64_t start_ = -1; ///< -1: disabled at construction
    std::uint16_t name_ = 0;
    std::uint8_t argCount_ = 0;
    std::uint16_t argName0_ = 0;
    std::uint16_t argName1_ = 0;
    std::int64_t arg0_ = 0;
    std::int64_t arg1_ = 0;
};

} // namespace trace
} // namespace cs

/**
 * Call-site macros. Each interns its (literal) names once via a
 * function-local static, then pays one relaxed load per pass when
 * tracing is disabled. Names must be string literals or otherwise
 * stable for the first invocation.
 */
#ifndef CS_TRACE_DISABLED

#define CS_TRACE_CAT2(a, b) a##b
#define CS_TRACE_CAT(a, b) CS_TRACE_CAT2(a, b)

/** Span covering the rest of the enclosing scope. */
#define CS_TRACE_SPAN(name_lit)                                              \
    static const std::uint16_t CS_TRACE_CAT(cs_tr_n, __LINE__) =             \
        ::cs::trace::internName(name_lit);                                   \
    ::cs::trace::Scope CS_TRACE_CAT(cs_tr_s, __LINE__)(                      \
        CS_TRACE_CAT(cs_tr_n, __LINE__))

/** Span with one integer argument. */
#define CS_TRACE_SPAN1(name_lit, arg_lit, value)                             \
    static const std::uint16_t CS_TRACE_CAT(cs_tr_n, __LINE__) =             \
        ::cs::trace::internName(name_lit);                                   \
    static const std::uint16_t CS_TRACE_CAT(cs_tr_a, __LINE__) =             \
        ::cs::trace::internName(arg_lit);                                    \
    ::cs::trace::Scope CS_TRACE_CAT(cs_tr_s, __LINE__)(                      \
        CS_TRACE_CAT(cs_tr_n, __LINE__),                                     \
        CS_TRACE_CAT(cs_tr_a, __LINE__),                                     \
        static_cast<std::int64_t>(value))

/** Span with two integer arguments. */
#define CS_TRACE_SPAN2(name_lit, arg0_lit, v0, arg1_lit, v1)                 \
    static const std::uint16_t CS_TRACE_CAT(cs_tr_n, __LINE__) =             \
        ::cs::trace::internName(name_lit);                                   \
    static const std::uint16_t CS_TRACE_CAT(cs_tr_a, __LINE__) =             \
        ::cs::trace::internName(arg0_lit);                                   \
    static const std::uint16_t CS_TRACE_CAT(cs_tr_b, __LINE__) =             \
        ::cs::trace::internName(arg1_lit);                                   \
    ::cs::trace::Scope CS_TRACE_CAT(cs_tr_s, __LINE__)(                      \
        CS_TRACE_CAT(cs_tr_n, __LINE__),                                     \
        CS_TRACE_CAT(cs_tr_a, __LINE__), static_cast<std::int64_t>(v0),      \
        CS_TRACE_CAT(cs_tr_b, __LINE__), static_cast<std::int64_t>(v1))

/** Instant event with one integer argument. */
#define CS_TRACE_INSTANT1(name_lit, arg_lit, value)                          \
    do {                                                                     \
        if (::cs::trace::enabled()) {                                        \
            static const std::uint16_t cs_tr_n =                             \
                ::cs::trace::internName(name_lit);                           \
            static const std::uint16_t cs_tr_a =                             \
                ::cs::trace::internName(arg_lit);                            \
            ::cs::trace::emitInstant(cs_tr_n, 1, cs_tr_a,                    \
                                     static_cast<std::int64_t>(value));      \
        }                                                                    \
    } while (0)

/** Instant event with two integer arguments. */
#define CS_TRACE_INSTANT2(name_lit, arg0_lit, v0, arg1_lit, v1)              \
    do {                                                                     \
        if (::cs::trace::enabled()) {                                        \
            static const std::uint16_t cs_tr_n =                             \
                ::cs::trace::internName(name_lit);                           \
            static const std::uint16_t cs_tr_a =                             \
                ::cs::trace::internName(arg0_lit);                           \
            static const std::uint16_t cs_tr_b =                             \
                ::cs::trace::internName(arg1_lit);                           \
            ::cs::trace::emitInstant(cs_tr_n, 2, cs_tr_a,                    \
                                     static_cast<std::int64_t>(v0),          \
                                     cs_tr_b,                                \
                                     static_cast<std::int64_t>(v1));         \
        }                                                                    \
    } while (0)

#else // CS_TRACE_DISABLED: compile the instrumentation out entirely.

#define CS_TRACE_SPAN(name_lit) do {} while (0)
#define CS_TRACE_SPAN1(name_lit, arg_lit, value) do {} while (0)
#define CS_TRACE_SPAN2(name_lit, a0, v0, a1, v1) do {} while (0)
#define CS_TRACE_INSTANT1(name_lit, arg_lit, value) do {} while (0)
#define CS_TRACE_INSTANT2(name_lit, a0, v0, a1, v1) do {} while (0)

#endif // CS_TRACE_DISABLED

#endif // CS_SUPPORT_TRACE_HPP
