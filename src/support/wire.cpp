#include "support/wire.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cs::wire {

namespace {

bool
isPunct(char c)
{
    return c == '{' || c == '}' || c == '[' || c == ']' || c == '(' ||
           c == ')' || c == ',' || c == '=';
}

} // namespace

TextScanner::TextScanner(std::string_view text) : text_(text)
{
}

void
TextScanner::fail(const std::string &message)
{
    if (failed_)
        return;
    failed_ = true;
    error_ = "line " + std::to_string(line_) + ": " + message;
    haveToken_ = false;
    current_.clear();
}

void
TextScanner::skipSpace()
{
    while (pos_ < text_.size()) {
        char c = text_[pos_];
        if (c == '\n') {
            ++line_;
            ++pos_;
        } else if (c == ' ' || c == '\t' || c == '\r') {
            ++pos_;
        } else if (c == '#') {
            while (pos_ < text_.size() && text_[pos_] != '\n')
                ++pos_;
        } else {
            break;
        }
    }
}

bool
TextScanner::scanToken()
{
    if (failed_)
        return false;
    skipSpace();
    if (pos_ >= text_.size())
        return false;

    current_.clear();
    lastQuoted_ = false;
    char c = text_[pos_];
    if (isPunct(c)) {
        current_.push_back(c);
        ++pos_;
        return true;
    }
    if (c == '"') {
        lastQuoted_ = true;
        ++pos_;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return false;
            }
            char d = text_[pos_++];
            if (d == '"')
                return true;
            if (d == '\n') {
                fail("newline in string");
                return false;
            }
            if (d == '\\') {
                if (pos_ >= text_.size()) {
                    fail("unterminated escape");
                    return false;
                }
                char e = text_[pos_++];
                switch (e) {
                  case 'n': current_.push_back('\n'); break;
                  case 't': current_.push_back('\t'); break;
                  case '\\': current_.push_back('\\'); break;
                  case '"': current_.push_back('"'); break;
                  default:
                    fail(std::string("bad escape '\\") + e + "'");
                    return false;
                }
            } else {
                current_.push_back(d);
            }
        }
    }
    // Bare word: runs to whitespace, punctuation, comment, or quote.
    while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (d == ' ' || d == '\t' || d == '\r' || d == '\n' ||
            d == '#' || d == '"' || isPunct(d)) {
            break;
        }
        current_.push_back(d);
        ++pos_;
    }
    return true;
}

bool
TextScanner::atEnd()
{
    if (failed_)
        return true;
    if (!haveToken_)
        haveToken_ = scanToken();
    return !haveToken_;
}

std::string_view
TextScanner::peek()
{
    if (failed_)
        return {};
    if (!haveToken_)
        haveToken_ = scanToken();
    return haveToken_ ? std::string_view(current_) : std::string_view();
}

std::string_view
TextScanner::next()
{
    peek();
    if (!haveToken_)
        return {};
    haveToken_ = false;
    return current_; // stays valid until the next scan
}

bool
TextScanner::accept(std::string_view token)
{
    if (peek() != token || lastQuoted_ || failed_)
        return false;
    haveToken_ = false;
    return true;
}

bool
TextScanner::expect(std::string_view token)
{
    if (failed_)
        return false;
    std::string_view got = peek();
    if (!haveToken_) {
        fail("expected '" + std::string(token) + "', got end of input");
        return false;
    }
    if (got != token || lastQuoted_) {
        fail("expected '" + std::string(token) + "', got '" +
             std::string(got) + "'");
        return false;
    }
    haveToken_ = false;
    return true;
}

bool
TextScanner::quoted(std::string *out)
{
    if (failed_)
        return false;
    peek();
    if (!haveToken_ || !lastQuoted_) {
        fail("expected a quoted string, got '" + current_ + "'");
        return false;
    }
    *out = current_;
    haveToken_ = false;
    return true;
}

bool
TextScanner::integer(std::int64_t *out)
{
    if (failed_)
        return false;
    peek();
    if (!haveToken_ || lastQuoted_ || current_.empty()) {
        fail("expected an integer");
        return false;
    }
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(current_.c_str(), &end, 10);
    if (errno == ERANGE || end == current_.c_str() || *end != '\0') {
        fail("bad integer '" + current_ + "'");
        return false;
    }
    *out = v;
    haveToken_ = false;
    return true;
}

bool
TextScanner::unsignedInt(std::uint64_t *out)
{
    if (failed_)
        return false;
    peek();
    if (!haveToken_ || lastQuoted_ || current_.empty() ||
        current_[0] == '-') {
        fail("expected an unsigned integer");
        return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(current_.c_str(), &end, 10);
    if (errno == ERANGE || end == current_.c_str() || *end != '\0') {
        fail("bad unsigned integer '" + current_ + "'");
        return false;
    }
    *out = v;
    haveToken_ = false;
    return true;
}

bool
TextScanner::intInRange(const char *what, std::int64_t lo,
                        std::int64_t hi, std::int64_t *out)
{
    std::int64_t v = 0;
    if (!integer(&v))
        return false;
    if (v < lo || v > hi) {
        fail(std::string(what) + " " + std::to_string(v) +
             " out of range [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "]");
        return false;
    }
    *out = v;
    return true;
}

bool
TextScanner::floating(double *out)
{
    if (failed_)
        return false;
    peek();
    if (!haveToken_ || lastQuoted_ || current_.empty()) {
        fail("expected a float");
        return false;
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(current_.c_str(), &end);
    if (end == current_.c_str() || *end != '\0') {
        fail("bad float '" + current_ + "'");
        return false;
    }
    *out = v;
    haveToken_ = false;
    return true;
}

bool
TextScanner::boolean(bool *out)
{
    if (accept("true")) {
        *out = true;
        return true;
    }
    if (accept("false")) {
        *out = false;
        return true;
    }
    if (!failed_)
        fail("expected 'true' or 'false', got '" +
             std::string(peek()) + "'");
    return false;
}

std::string
quoteString(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out.push_back(c); break;
        }
    }
    out.push_back('"');
    return out;
}

std::string
exactFloat(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

void
ByteWriter::u16(std::uint16_t v)
{
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
ByteWriter::str(std::string_view s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
}

void
ByteReader::fail(const std::string &message)
{
    if (failed_)
        return;
    failed_ = true;
    error_ = "byte " + std::to_string(pos_) + ": " + message;
}

const std::uint8_t *
ByteReader::take(std::size_t n)
{
    if (failed_)
        return nullptr;
    if (remaining() < n) {
        fail("truncated input (need " + std::to_string(n) +
             " bytes, have " + std::to_string(remaining()) + ")");
        return nullptr;
    }
    const std::uint8_t *p = data_.data() + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
ByteReader::u8()
{
    const std::uint8_t *p = take(1);
    return p ? p[0] : 0;
}

std::uint16_t
ByteReader::u16()
{
    const std::uint8_t *p = take(2);
    if (!p)
        return 0;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
ByteReader::u32()
{
    const std::uint8_t *p = take(4);
    if (!p)
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    const std::uint8_t *p = take(8);
    if (!p)
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

double
ByteReader::f64()
{
    std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

bool
ByteReader::boolean()
{
    std::uint8_t v = u8();
    if (v > 1)
        fail("bad boolean value " + std::to_string(v));
    return v == 1;
}

std::string
ByteReader::str()
{
    std::uint32_t len = u32();
    if (failed_)
        return {};
    if (len > remaining()) {
        fail("string length " + std::to_string(len) +
             " exceeds remaining input");
        return {};
    }
    const std::uint8_t *p = take(len);
    return p ? std::string(reinterpret_cast<const char *>(p), len)
             : std::string();
}

std::uint32_t
ByteReader::arrayCount(std::size_t minBytesPerElem)
{
    std::uint32_t count = u32();
    if (failed_)
        return 0;
    if (minBytesPerElem > 0 &&
        count > remaining() / minBytesPerElem) {
        fail("element count " + std::to_string(count) +
             " exceeds remaining input");
        return 0;
    }
    return count;
}

} // namespace cs::wire
