/**
 * @file
 * Encoding toolkit shared by every serializable description (kernels,
 * machines, job sets, cached results): a tokenizing text scanner for
 * the human-readable format and bounds-checked little-endian byte
 * readers/writers for the compact binary format.
 *
 * Error discipline: parsers must never crash on malformed input, so
 * both scanner and byte reader are *monadic* — the first failure
 * latches an error message (with position) and every subsequent
 * operation becomes a no-op returning false/zero. Parse code can
 * therefore read straight-line and check failed() once per section.
 */

#ifndef CS_SUPPORT_WIRE_HPP
#define CS_SUPPORT_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cs::wire {

/** @name Raw little-endian loads/stores
 *  Shared by every fixed-layout on-disk/on-wire structure that is not
 *  written through ByteWriter (shard records and index footers in
 *  pipeline/persistent_cache, frame headers in serve/proto). Byte-wise,
 *  so they are endian- and alignment-safe on any host.
 */
/// @{
inline std::uint32_t
loadU32le(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

inline std::uint64_t
loadU64le(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

inline void
storeU32le(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void
storeU64le(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void
appendU32le(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void
appendU64le(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
/// @}

/**
 * Whitespace-separated token scanner. Tokens are words, quoted
 * strings ("..." with \\ \" \n \t escapes, decoded), or single
 * punctuation characters from {}[](),=. A '#' starts a comment that
 * runs to end of line. Line numbers are tracked for diagnostics.
 */
class TextScanner
{
  public:
    explicit TextScanner(std::string_view text);

    /** True once a scan/expect error latched; all ops are no-ops. */
    bool failed() const { return failed_; }
    /** The latched diagnostic, e.g. "line 7: expected '{', got 'x'". */
    const std::string &error() const { return error_; }
    /** Latch an error (keeps the first one). */
    void fail(const std::string &message);

    /** True at end of input (or after a failure). */
    bool atEnd();

    /** Current token without consuming ("" at end). */
    std::string_view peek();
    /** Consume and return the current token ("" at end). */
    std::string_view next();

    /** Consume the token iff it equals @p token. */
    bool accept(std::string_view token);
    /** Consume the token; latch an error unless it equals @p token. */
    bool expect(std::string_view token);

    /** Expect a quoted string token; decode into @p out. */
    bool quoted(std::string *out);
    /** Expect a (possibly signed) decimal integer. */
    bool integer(std::int64_t *out);
    /** Expect an unsigned decimal integer. */
    bool unsignedInt(std::uint64_t *out);
    /** Expect an integer in [lo, hi]; message names @p what. */
    bool intInRange(const char *what, std::int64_t lo, std::int64_t hi,
                    std::int64_t *out);
    /** Expect a float: decimal, hexfloat (%a), inf or nan. */
    bool floating(double *out);
    /** Expect "true" or "false". */
    bool boolean(bool *out);

    /** Was the most recent peek()/next() token a quoted string? */
    bool lastWasQuoted() const { return lastQuoted_; }

    int line() const { return line_; }

  private:
    void skipSpace();
    bool scanToken(); ///< fill current_ from input; false at end

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    bool haveToken_ = false;
    bool lastQuoted_ = false;
    std::string current_; ///< decoded token (escapes resolved)
    bool failed_ = false;
    std::string error_;
};

/** Quote and escape @p s for the text format. */
std::string quoteString(std::string_view s);

/** Print a double so it round-trips exactly (printf %a hexfloat). */
std::string exactFloat(double v);

/** Append-only little-endian binary writer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    /** u32 length prefix + raw bytes. */
    void str(std::string_view s);

    std::size_t size() const { return out_.size(); }

  private:
    std::vector<std::uint8_t> &out_;
};

/**
 * Bounds-checked little-endian binary reader. Reads past the end (or
 * after a failure) return zero values and latch an error; length
 * prefixes are validated against the remaining input before any
 * allocation, so hostile lengths cannot trigger huge reserves.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data)
        : data_(data)
    {}

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }
    void fail(const std::string &message);

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return failed_ || pos_ == data_.size(); }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool boolean();
    /** u32 length prefix + raw bytes (validated against remaining). */
    std::string str();

    /**
     * Read a u32 element count and validate count * minBytesPerElem
     * fits in the remaining input (so reserve(count) is safe).
     */
    std::uint32_t arrayCount(std::size_t minBytesPerElem);

  private:
    const std::uint8_t *take(std::size_t n);

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

} // namespace cs::wire

#endif // CS_SUPPORT_WIRE_HPP
