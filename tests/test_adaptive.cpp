/**
 * @file
 * The adaptive II-search layer (pipeline/adaptive.hpp) and the
 * restart-on-explosion mode (core/modulo_scheduler.hpp).
 *
 * Two different contracts are pinned here. Adaptive ordering is
 * *exact*: it may only permute attempt launch order and bound the
 * speculation window, so its tests assert byte-identical listings and
 * fixed-order equivalence (the golden suites in
 * test_modulo_parallel.cpp gate the same invariant end to end).
 * Restarts are *not* exact — retained no-goods redistribute attempt
 * budgets, which may legitimately change which schedule is found — so
 * restart results are pinned by what cannot legally vary: the search
 * succeeds, the schedule passes the independent validator, the II
 * respects MII, and the whole thing is deterministic run to run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "core/nogood.hpp"
#include "core/sched_context.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "pipeline/adaptive.hpp"
#include "pipeline/ii_search.hpp"
#include "pipeline/job.hpp"
#include "pipeline/thread_pool.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

// ---------------------------------------------------------------- Luby

TEST(Luby, CanonicalPrefix)
{
    const std::uint64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2,
                                      1, 1, 2, 4, 8, 1, 1, 2, 1};
    for (std::size_t i = 0; i < std::size(expected); ++i)
        EXPECT_EQ(lubySequence(i + 1), expected[i]) << "i=" << i + 1;
}

TEST(Luby, PowersAppearAtTheirPositions)
{
    // u_(2^k - 1) = 2^(k-1): the subsequence of fresh maxima.
    for (std::uint64_t k = 1; k <= 20; ++k)
        EXPECT_EQ(lubySequence((std::uint64_t{1} << k) - 1),
                  std::uint64_t{1} << (k - 1));
}

// ------------------------------------------------------------- planner

std::array<std::uint64_t, kNumRejectReasons>
noRejects()
{
    return {};
}

TEST(AdaptivePlanner, EmptyProfileLaunchesTheFixedOrder)
{
    // A cold planner with no feedback is the legacy search: ascending
    // attempt index, exactly.
    AttemptPlanner planner(9, 3, PortfolioProfile{});
    for (int k = 0; k < 9; ++k) {
        EXPECT_TRUE(planner.hasLaunchable(9));
        EXPECT_EQ(planner.nextLaunch(9), k);
    }
    EXPECT_FALSE(planner.hasLaunchable(9));
    EXPECT_EQ(planner.nextLaunch(9), -1);
}

TEST(AdaptivePlanner, BoundCapsSpeculation)
{
    AttemptPlanner planner(9, 3, PortfolioProfile{});
    EXPECT_EQ(planner.nextLaunch(2), 0);
    EXPECT_EQ(planner.nextLaunch(2), 1);
    EXPECT_EQ(planner.nextLaunch(2), -1); // k=2 is past the bound
    EXPECT_FALSE(planner.hasLaunchable(2));
    EXPECT_TRUE(planner.hasLaunchable(3));
    EXPECT_EQ(planner.nextLaunch(9), 2);
}

TEST(AdaptivePlanner, PortConflictsPromoteTheFlippedVariant)
{
    AttemptPlanner planner(9, 3, PortfolioProfile{});
    EXPECT_EQ(planner.nextLaunch(9), 0);
    std::array<std::uint64_t, kNumRejectReasons> rejects{};
    rejects[static_cast<std::size_t>(
        RejectReason::ReadPortConflict)] = 50;
    planner.onAttemptDone(0, false, rejects, 100);
    // Variant 2 (flipped order) now outscores 1 and 0: within every
    // remaining slack it launches first; slacks stay ascending.
    EXPECT_EQ(planner.nextLaunch(9), 2);
    EXPECT_EQ(planner.nextLaunch(9), 1);
    EXPECT_EQ(planner.nextLaunch(9), 5); // slack 1: flipped first
    EXPECT_EQ(planner.nextLaunch(9), 3);
    EXPECT_EQ(planner.nextLaunch(9), 4);
}

TEST(AdaptivePlanner, RouteStarvationPromotesTheWideVariant)
{
    AttemptPlanner planner(6, 3, PortfolioProfile{});
    std::array<std::uint64_t, kNumRejectReasons> rejects{};
    rejects[static_cast<std::size_t>(
        RejectReason::RouteInfeasible)] = 10;
    rejects[static_cast<std::size_t>(RejectReason::BusConflict)] = 5;
    planner.onAttemptDone(0, false, rejects, 0);
    EXPECT_EQ(planner.nextLaunch(6), 1); // wide window first
    EXPECT_EQ(planner.nextLaunch(6), 0);
    EXPECT_EQ(planner.nextLaunch(6), 2);
}

TEST(AdaptivePlanner, FirstAttemptAlwaysWinsGoesSerial)
{
    PortfolioProfile profile;
    profile.jobs = 3;
    profile.maxWinnerK = 0;
    AttemptPlanner planner(9, 3, profile);
    AttemptPlanner::Plan plan = planner.plan(4);
    EXPECT_TRUE(plan.serialInline);
    EXPECT_EQ(plan.window, 1);
}

TEST(AdaptivePlanner, WindowShrinksToObservedWorstCasePlusSlack)
{
    PortfolioProfile profile;
    profile.jobs = 5;
    profile.maxWinnerK = 2;
    AttemptPlanner planner(30, 3, profile);
    AttemptPlanner::Plan plan = planner.plan(8);
    EXPECT_FALSE(plan.serialInline);
    EXPECT_EQ(plan.window, 4); // maxWinnerK + 1 needed, + 1 headroom
    // Never widens past the request, never below 2.
    EXPECT_EQ(planner.plan(3).window, 3);
    EXPECT_EQ(planner.plan(2).window, 2);
}

TEST(AdaptivePlanner, ColdShapeKeepsTheRequestedWindow)
{
    PortfolioProfile one;
    one.jobs = 1; // one observation is not yet a pattern
    one.maxWinnerK = 0;
    AttemptPlanner planner(9, 3, one);
    AttemptPlanner::Plan plan = planner.plan(4);
    EXPECT_FALSE(plan.serialInline);
    EXPECT_EQ(plan.window, 4);
}

// ----------------------------------------------------------- portfolio

TEST(AdaptivePortfolio, RecordsAndLooksUpByShape)
{
    PortfolioStats stats;
    std::array<std::uint64_t, kNumRejectReasons> rejects{};
    rejects[0] = 7;
    stats.record(42, 4, 3, rejects, 1000);
    stats.record(42, 1, 3, noRejects(), 500);
    stats.record(99, -1, 3, noRejects(), 50); // failed search

    PortfolioProfile p = stats.lookup(42);
    EXPECT_EQ(p.jobs, 2u);
    EXPECT_EQ(p.maxWinnerK, 4u);
    EXPECT_EQ(p.winnerKSum, 5u);
    EXPECT_EQ(p.variantWins[1], 2u); // 4 % 3 == 1 % 3 == 1
    EXPECT_EQ(p.rejects[0], 7u);
    EXPECT_EQ(p.dfsNodes, 1500u);

    PortfolioProfile failed = stats.lookup(99);
    EXPECT_EQ(failed.jobs, 0u); // failures contribute effort only
    EXPECT_EQ(failed.dfsNodes, 50u);

    EXPECT_EQ(stats.lookup(7).jobs, 0u); // unknown shape is empty
    EXPECT_EQ(stats.size(), 2u);
    stats.clear();
    EXPECT_EQ(stats.size(), 0u);
    EXPECT_EQ(stats.lookup(42).jobs, 0u);
}

TEST(AdaptivePortfolio, ShapeKeySeparatesMachinesAndSizes)
{
    Machine central = makeCentral();
    Machine distributed = makeDistributed();
    Kernel kernel = allKernels().front().build();

    BlockSchedulingContext onCentral(kernel, BlockId(0), central);
    BlockSchedulingContext onDistributed(kernel, BlockId(0),
                                         distributed);
    EXPECT_NE(classifyBlock(onCentral).shapeKey(),
              classifyBlock(onDistributed).shapeKey());
    // Same context twice keys identically (the key is a pure function
    // of the features).
    EXPECT_EQ(classifyBlock(onCentral).shapeKey(),
              classifyBlock(onCentral).shapeKey());
}

// --------------------------------------------------- cache-key closure

TEST(AdaptiveCacheKey, NewOptionsPerturbTheJobKey)
{
    // The content-addressed cache must not serve a restart-mode result
    // to a default-mode request (restart results may legally differ),
    // and flipping adaptivity must re-key as well (cheap insurance,
    // though results cannot differ).
    Machine central = makeCentral();
    ScheduleJob a;
    a.kernel = allKernels().front().build();
    a.block = BlockId(0);
    a.machine = &central;

    ScheduleJob b = a;
    b.options.adaptiveOrdering = !a.options.adaptiveOrdering;
    EXPECT_NE(scheduleJobKey(a), scheduleJobKey(b));

    b = a;
    b.options.restartOnExplosion = true;
    EXPECT_NE(scheduleJobKey(a), scheduleJobKey(b));

    b = a;
    b.options.restartBaseNodes = a.options.restartBaseNodes * 2;
    EXPECT_NE(scheduleJobKey(a), scheduleJobKey(b));
}

// -------------------------------------------------------- no-good table

TEST(NoGoodTable, EvictionIsLossyButNeverWrong)
{
    // Push far past the slot cap so home-slot overwrites occur, then
    // check the one property eviction must preserve: contains() never
    // affirms a signature that was not inserted. Forgetting is safe
    // (costs a re-search); inventing would corrupt schedules.
    NoGoodTable table;
    const std::uint64_t kInserted = 150000; // > 3/4 * kMaxSlots
    auto sigOf = [](std::uint64_t i) {
        return (i + 1) * 0x9e3779b97f4a7c15ULL; // odd multiplier, unique
    };
    for (std::uint64_t i = 0; i < kInserted; ++i)
        table.insert(sigOf(i));
    EXPECT_GT(table.evictions(), 0u);
    EXPECT_LE(table.size(), NoGoodTable::kMaxSlots);

    std::uint64_t remembered = 0;
    for (std::uint64_t i = 0; i < kInserted; ++i)
        remembered += table.contains(sigOf(i)) ? 1 : 0;
    EXPECT_GT(remembered, 0u); // lossy, not amnesiac
    // Never wrong: signatures that were never inserted stay absent.
    for (std::uint64_t i = 0; i < 10000; ++i)
        EXPECT_FALSE(table.contains(sigOf(kInserted + i)));
}

TEST(NoGoodTable, BelowCapacityIsExact)
{
    NoGoodTable table;
    for (std::uint64_t i = 1; i <= 500; ++i)
        EXPECT_TRUE(table.insert(i * 7919));
    EXPECT_EQ(table.size(), 500u);
    EXPECT_EQ(table.evictions(), 0u);
    for (std::uint64_t i = 1; i <= 500; ++i)
        EXPECT_TRUE(table.contains(i * 7919));
    EXPECT_FALSE(table.insert(7919)); // duplicate
}

// ---------------------------------------------- no-good exchange (TSan)

/**
 * Concurrent publish/snapshot/size churn. Named NoGoodExchangeTsan so
 * the tests/CMakeLists.txt sanitize filter routes it into the TSan
 * build (see CS_SANITIZE_TESTS): the lock-free reader protocol —
 * acquire-load of the count making the slab prefix visible — is
 * exactly what TSan must vet.
 */
TEST(NoGoodExchangeTsan, ConcurrentPublishAndSnapshotAgree)
{
    NoGoodExchange exchange;
    constexpr int kWriters = 3;
    constexpr int kReaders = 3;
    constexpr std::uint64_t kPerWriter = 2000;
    std::atomic<bool> stop{false};

    auto writer = [&exchange](int id) {
        std::vector<std::uint64_t> batch;
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
            batch.push_back(
                (static_cast<std::uint64_t>(id) << 32) | (i + 1));
            if (batch.size() == 64) {
                exchange.publish(batch);
                batch.clear();
            }
        }
        exchange.publish(batch);
    };
    auto reader = [&exchange, &stop] {
        std::vector<std::uint64_t> snap;
        std::size_t lastSize = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            exchange.snapshotInto(snap);
            // The visible prefix only grows, and a snapshot taken
            // later is a superset prefix of one taken earlier.
            ASSERT_GE(snap.size(), lastSize);
            lastSize = snap.size();
            for (std::uint64_t sig : snap)
                ASSERT_NE(sig, 0u); // published slots are complete
        }
    };

    std::vector<std::thread> threads;
    for (int r = 0; r < kReaders; ++r)
        threads.emplace_back(reader);
    for (int w = 0; w < kWriters; ++w)
        threads.emplace_back(writer, w);
    for (int w = 0; w < kWriters; ++w)
        threads[static_cast<std::size_t>(kReaders + w)].join();
    stop.store(true);
    for (int r = 0; r < kReaders; ++r)
        threads[static_cast<std::size_t>(r)].join();

    // All distinct signatures fit below capacity, so nothing is lost.
    std::vector<std::uint64_t> final_snap;
    exchange.snapshotInto(final_snap);
    EXPECT_EQ(final_snap.size(), kWriters * kPerWriter);
    EXPECT_EQ(exchange.size(), kWriters * kPerWriter);
    std::set<std::uint64_t> unique(final_snap.begin(),
                                   final_snap.end());
    EXPECT_EQ(unique.size(), final_snap.size()); // dedup held up
}

TEST(NoGoodExchangeTsan, CapacityBoundsPublishing)
{
    NoGoodExchange exchange;
    std::vector<std::uint64_t> batch(NoGoodExchange::kCapacity + 500);
    for (std::size_t i = 0; i < batch.size(); ++i)
        batch[i] = i + 1;
    exchange.publish(batch);
    EXPECT_EQ(exchange.size(), NoGoodExchange::kCapacity);
}

// ------------------------------------------------------------ restarts

/** Smallest Table-1 kernel whose winning clustered2 attempt burns
 *  enough DFS nodes that a tiny Luby budget must trip. */
const KernelSpec *
hardKernelOn(const Machine &machine, std::uint64_t minNodes)
{
    for (const KernelSpec &spec : allKernels()) {
        Kernel kernel = spec.build();
        PipelineResult base =
            schedulePipelined(kernel, BlockId(0), machine);
        if (base.success &&
            base.inner.stats.get("dfs_nodes") >= minNodes)
            return &spec;
    }
    return nullptr;
}

TEST(Restart, DefaultOff)
{
    EXPECT_FALSE(SchedulerOptions{}.restartOnExplosion);
}

TEST(Restart, ForcedRestartsStillProduceAValidSchedule)
{
    setVerboseLogging(false);
    Machine machine = makeClustered({}, 2);
    const KernelSpec *spec = hardKernelOn(machine, 2000);
    if (spec == nullptr)
        GTEST_SKIP() << "no kernel expensive enough to force restarts";
    Kernel kernel = spec->build();

    SchedulerOptions options;
    options.restartOnExplosion = true;
    options.restartBaseNodes = 64; // far below the observed search

    PipelineResult restarted =
        schedulePipelined(kernel, BlockId(0), machine, options);
    ASSERT_TRUE(restarted.success) << spec->name;
    EXPECT_GT(restarted.inner.stats.get("restarts"), 0u)
        << spec->name << ": the tiny Luby budget never tripped";

    // The exactness pins restart mode *can* honor: a legal schedule
    // (independent validator), at a legal II, deterministically.
    EXPECT_TRUE(validateSchedule(restarted.inner.kernel, machine,
                                 restarted.inner.schedule)
                    .empty());
    EXPECT_GE(restarted.ii,
              std::max(restarted.resMii, restarted.recMii));

    PipelineResult again =
        schedulePipelined(kernel, BlockId(0), machine, options);
    ASSERT_TRUE(again.success);
    EXPECT_EQ(again.ii, restarted.ii);
    EXPECT_EQ(exportListing(again.inner.kernel, machine,
                            again.inner.schedule),
              exportListing(restarted.inner.kernel, machine,
                            restarted.inner.schedule));
}

TEST(Restart, LatchIsInvisibleWhenDisabled)
{
    // With the mode off, runAttemptWithRestarts is exactly one run:
    // identical listing and no "restarts" counter.
    setVerboseLogging(false);
    Machine machine = makeCentral();
    Kernel kernel = allKernels().front().build();
    PipelineResult base = schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(base.success);
    EXPECT_EQ(base.inner.stats.get("restarts"), 0u);
}

// ---------------------------------------------- serial-inline (warmed)

TEST(AdaptiveSearch, WarmPortfolioSerialInlinesAndKeepsTheListing)
{
    setVerboseLogging(false);
    Machine machine = makeCentral();
    // A shape whose winner is attempt 0: after two recorded searches
    // the classifier must switch it to the inline serial path.
    const KernelSpec *easy = nullptr;
    for (const KernelSpec &spec : allKernels()) {
        Kernel kernel = spec.build();
        PipelineResult base =
            schedulePipelined(kernel, BlockId(0), machine);
        if (base.success && base.attempts == 1) {
            easy = &spec;
            break;
        }
    }
    ASSERT_NE(easy, nullptr) << "no first-attempt-wins kernel";
    Kernel kernel = easy->build();

    PortfolioStats::global().clear();
    ThreadPool pool(2);
    IiSearchConfig config;
    config.pool = &pool;
    config.maxInFlight = 3;

    std::string firstListing;
    for (int run = 0; run < 3; ++run) {
        PipelineResult result = schedulePipelinedParallel(
            kernel, BlockId(0), machine, {}, 64, config);
        ASSERT_TRUE(result.success) << "run " << run;
        std::string listing = exportListing(
            result.inner.kernel, machine, result.inner.schedule);
        if (run == 0)
            firstListing = listing;
        EXPECT_EQ(listing, firstListing) << "run " << run;
        if (run == 2) {
            // jobs >= 2 by now: the planner must have gone serial.
            EXPECT_EQ(result.inner.stats.get("ii_search.serial_inline"),
                      1u);
            EXPECT_EQ(result.attemptsWasted, 0);
        }
    }
    PortfolioStats::global().clear(); // leave no warmth behind
}

} // namespace
} // namespace cs
