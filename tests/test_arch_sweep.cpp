/**
 * @file
 * Parameterized architecture sweeps: communication scheduling must
 * remain correct (not merely fast) across a family of machines — bus
 * counts from scarce to abundant on the distributed organization,
 * cluster counts from 2 to 8, and scaled unit mixes. Each point
 * schedules a representative kernel, validates structurally, and
 * simulates bit-exactly.
 */

#include <gtest/gtest.h>

#include "machine/builders.hpp"
#include "sim/harness.hpp"

namespace cs {
namespace {

class BusSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BusSweep, DistributedCorrectAtAnyBusCount)
{
    StdMachineConfig cfg;
    cfg.numGlobalBuses = GetParam();
    Machine machine = makeDistributed(cfg);
    std::string why;
    ASSERT_TRUE(machine.checkCopyConnected(&why)) << why;

    for (const char *name : {"FFT", "Block Warp"}) {
        KernelRunResult run =
            runKernel(kernelByName(name), machine, false);
        EXPECT_TRUE(run.scheduled) << name << " @" << GetParam()
                                   << " buses";
        EXPECT_TRUE(run.valid) << name;
        EXPECT_TRUE(run.matches) << name;
    }
}

TEST_P(BusSweep, FewerBusesNeverBeatMoreBuses)
{
    // II must be monotone non-increasing in bus count (more result
    // bandwidth can only help).
    StdMachineConfig scarce;
    scarce.numGlobalBuses = GetParam();
    StdMachineConfig rich;
    rich.numGlobalBuses = 16;
    const KernelSpec &spec = kernelByName("FFT");
    int ii_scarce = scheduleCyclesPerIteration(
        spec, makeDistributed(scarce), true);
    int ii_rich = scheduleCyclesPerIteration(
        spec, makeDistributed(rich), true);
    EXPECT_GE(ii_scarce, ii_rich);
}

INSTANTIATE_TEST_SUITE_P(Buses, BusSweep,
                         ::testing::Values(2, 4, 6, 10, 16));

class ClusterSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ClusterSweep, ClusteredCorrectAtAnyClusterCount)
{
    Machine machine = makeClustered({}, GetParam());
    std::string why;
    ASSERT_TRUE(machine.checkCopyConnected(&why)) << why;

    for (const char *name : {"FFT", "DCT"}) {
        KernelRunResult run =
            runKernel(kernelByName(name), machine, false);
        EXPECT_TRUE(run.scheduled) << name;
        EXPECT_TRUE(run.valid) << name;
        EXPECT_TRUE(run.matches) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Clusters, ClusterSweep,
                         ::testing::Values(2, 3, 4, 5, 8));

class MixScale : public ::testing::TestWithParam<int>
{
};

TEST_P(MixScale, ScaledMachinesStillSchedule)
{
    StdMachineConfig cfg;
    cfg.mix = FuMix{}.scaled(GetParam());
    cfg.totalRegisters = 256 * GetParam();
    cfg.numGlobalBuses = 10 * GetParam();

    for (auto maker : {+[](const StdMachineConfig &c) {
                           return makeCentral(c);
                       },
                       +[](const StdMachineConfig &c) {
                           return makeDistributed(c);
                       },
                       +[](const StdMachineConfig &c) {
                           return makeClustered(c, 4);
                       }}) {
        Machine machine = maker(cfg);
        std::string why;
        ASSERT_TRUE(machine.checkCopyConnected(&why)) << why;
        KernelRunResult run =
            runKernel(kernelByName("FFT-U4"), machine, false);
        EXPECT_TRUE(run.scheduled) << machine.name();
        EXPECT_TRUE(run.matches) << machine.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Scales, MixScale, ::testing::Values(1, 2, 3));

TEST(ArchSweep, MoreUnitsReduceIiForWideKernels)
{
    // FFT-U4 on a doubled machine should pipeline at a smaller or
    // equal II: the workload's ILP is bus/unit limited.
    StdMachineConfig cfg1;
    StdMachineConfig cfg2;
    cfg2.mix = FuMix{}.scaled(2);
    cfg2.numGlobalBuses = 20;
    cfg2.totalRegisters = 512;
    const KernelSpec &spec = kernelByName("FFT-U4");
    int small = scheduleCyclesPerIteration(spec, makeCentral(cfg1),
                                           true);
    int big = scheduleCyclesPerIteration(spec, makeCentral(cfg2),
                                         true);
    EXPECT_LE(big, small);
    EXPECT_LE(big, (small + 1) / 2 + 1); // near-linear for FFT-U4
}

} // namespace
} // namespace cs
