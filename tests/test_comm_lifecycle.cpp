/**
 * @file
 * Communication-table and lifecycle unit tests: creation and lookup,
 * deactivation/reactivation (the copy-split transformation and its
 * undo), writer/reader queries, and the open -> closed transition as
 * observed through scheduled results.
 */

#include <gtest/gtest.h>

#include "core/communication.hpp"
#include "core/list_scheduler.hpp"
#include "ir/builder.hpp"
#include "machine/builders.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

TEST(CommTable, CreateFindAndQueries)
{
    CommTable table;
    CommId c0 =
        table.create(OperationId(1), ValueId(0), OperationId(2), 0, 0);
    CommId c1 =
        table.create(OperationId(1), ValueId(0), OperationId(3), 1, 2);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.find(OperationId(2), 0), c0);
    EXPECT_EQ(table.find(OperationId(3), 1), c1);
    EXPECT_FALSE(table.find(OperationId(3), 0).valid());

    auto from = table.fromWriter(OperationId(1));
    EXPECT_EQ(from.size(), 2u);
    auto to = table.toReader(OperationId(2));
    ASSERT_EQ(to.size(), 1u);
    EXPECT_EQ(to[0], c0);

    EXPECT_EQ(table.get(c1).distance, 2);
    EXPECT_FALSE(table.get(c0).isLiveIn());
    CommId live =
        table.create(OperationId(), ValueId(1), OperationId(4), 0, 0);
    EXPECT_TRUE(table.get(live).isLiveIn());
}

TEST(CommTable, DuplicateOperandRejected)
{
    CommTable table;
    table.create(OperationId(1), ValueId(0), OperationId(2), 0, 0);
    EXPECT_THROW(table.create(OperationId(9), ValueId(3),
                              OperationId(2), 0, 0),
                 PanicError);
}

TEST(CommTable, DeactivateReactivateRoundTrip)
{
    CommTable table;
    CommId c0 =
        table.create(OperationId(1), ValueId(0), OperationId(2), 0, 0);
    table.deactivate(c0);
    EXPECT_FALSE(table.find(OperationId(2), 0).valid());
    EXPECT_TRUE(table.fromWriter(OperationId(1)).empty());
    table.reactivate(c0);
    EXPECT_EQ(table.find(OperationId(2), 0), c0);
    EXPECT_THROW(table.reactivate(c0), PanicError);
}

TEST(CommTable, RemoveLastEnforcesLifo)
{
    CommTable table;
    CommId c0 =
        table.create(OperationId(1), ValueId(0), OperationId(2), 0, 0);
    CommId c1 =
        table.create(OperationId(1), ValueId(0), OperationId(3), 0, 0);
    EXPECT_THROW(table.removeLast(c0), PanicError);
    table.removeLast(c1);
    EXPECT_EQ(table.size(), 1u);
    EXPECT_FALSE(table.find(OperationId(3), 0).valid());
}

TEST(CommLifecycle, AllCommunicationsClosedAfterScheduling)
{
    // Indirect observation of the open->closed lifecycle: the result
    // carries one route per value operand, each with matching-file
    // stubs — i.e. every communication reached the closed state.
    KernelBuilder b("life");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val y = b.iadd(x, 1, "y");
    Val z = b.iadd(x, y, "z");
    b.store(200, z);
    Kernel kernel = b.take();
    Machine machine = makeFigure5Machine();
    ScheduleResult result = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success);

    std::size_t value_operands = 0;
    for (const Operation &op : result.kernel.operations()) {
        for (const Operand &operand : op.operands) {
            if (operand.isValue())
                ++value_operands;
        }
    }
    EXPECT_EQ(result.schedule.routes().size(), value_operands);
    for (const RouteRecord &route : result.schedule.routes()) {
        if (!route.writer.valid())
            continue;
        EXPECT_EQ(machine.writePortRegFile(route.writeStub->writePort),
                  machine.readPortRegFile(route.readStub.readPort));
    }
}

TEST(CommLifecycle, FanoutGetsOneRoutePerReader)
{
    // One value, three readers: three communications, three routes,
    // possibly sharing the same write stub (broadcast).
    KernelBuilder b("fanout");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val a = b.iadd(x, 1, "a");
    Val c = b.iadd(x, 2, "c");
    Val d = b.iadd(x, 3, "d");
    b.store(200, a);
    b.store(201, c);
    b.store(202, d);
    Kernel kernel = b.take();
    Machine machine = makeDistributed();
    ScheduleResult result = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success);

    int x_routes = 0;
    ValueId x_val = result.kernel.operation(OperationId(0)).result;
    for (const RouteRecord &route : result.schedule.routes()) {
        if (route.value == x_val)
            ++x_routes;
    }
    // Copies may split some of them, but at least one direct x route
    // exists and the total operand coverage holds (validated below).
    EXPECT_GE(x_routes, 1);
    EXPECT_TRUE(
        validateSchedule(result.kernel, machine, result.schedule)
            .empty());
}

TEST(CommLifecycle, BroadcastSharesOneBusOnDistributed)
{
    // When one result feeds several readers in the same cycle-ish
    // window, the write stubs should ride one bus (the value-rotation
    // and sharing preferences); count distinct buses used by the
    // value's write stubs on its completion cycle.
    KernelBuilder b("bcast");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val a = b.iadd(x, 1, "a");
    Val c = b.iadd(x, 2, "c");
    b.store(200, a);
    b.store(201, c);
    Kernel kernel = b.take();
    Machine machine = makeDistributed();
    ScheduleResult result = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success);

    ValueId x_val = result.kernel.operation(OperationId(0)).result;
    std::vector<BusId> buses;
    for (const RouteRecord &route : result.schedule.routes()) {
        if (route.value == x_val && route.writeStub)
            buses.push_back(route.writeStub->bus);
    }
    ASSERT_GE(buses.size(), 2u);
    for (const BusId &bus : buses)
        EXPECT_EQ(bus, buses[0]); // one broadcast bus
}

} // namespace
} // namespace cs
