/**
 * @file
 * Shared-analysis (context) cache and in-flight dedup suite:
 * content-keyed hit/miss/LRU-eviction accounting, eviction safety
 * behind shared_ptr, byte-equivalence of schedules produced through
 * shared contexts, cross-thread sharing (the TSan build pins the
 * acquire/build race and concurrent scheduling against one shared
 * context), and the pipeline's in-flight coalescing: N identical jobs
 * submitted together schedule exactly once, the other N-1 attach to
 * the leader's run, and every result is byte-identical to a singleton
 * run.
 *
 * Suite names matter: "ContextCache*" and "PipelineDedup*" are part
 * of the CS_SANITIZE_TESTS filter (tests/CMakeLists.txt and
 * .claude/skills/verify/SKILL.md must stay in sync).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "pipeline/context_cache.hpp"
#include "pipeline/pipeline.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"

namespace cs {
namespace {

Kernel
kernel(const char *name)
{
    return kernelByName(name).build();
}

/** Listing of a plain block schedule through @p context. */
std::string
listingVia(const BlockSchedulingContext &context)
{
    ScheduleResult result = scheduleBlock(context);
    CS_ASSERT(result.success, "schedule through shared context failed");
    return exportListing(result.kernel, context.machine(),
                         result.schedule);
}

TEST(ContextCache, HitMissEvictionFollowLruOrder)
{
    setVerboseLogging(false);
    Machine central = makeCentral();
    ContextCache cache(2);

    auto fft = cache.acquire(kernel("FFT"), BlockId(0), central);
    auto dct = cache.acquire(kernel("DCT"), BlockId(0), central);
    auto fftAgain = cache.acquire(kernel("FFT"), BlockId(0), central);
    EXPECT_EQ(fft.get(), fftAgain.get()) << "hit must share the entry";

    // FIR-FP evicts DCT (the LRU entry after the FFT hit); DCT then
    // misses and evicts FFT.
    auto fir = cache.acquire(kernel("FIR-FP"), BlockId(0), central);
    auto dctAgain = cache.acquire(kernel("DCT"), BlockId(0), central);
    EXPECT_NE(dct.get(), dctAgain.get()) << "DCT was evicted";

    ContextCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.capacity, 2u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.2);

    // The evicted entry stays alive and correct behind its shared_ptr:
    // schedules through it match a freshly built context byte for byte.
    EXPECT_EQ(listingVia(dct->context()),
              listingVia(dctAgain->context()));
}

TEST(ContextCache, KeyIsContentAddressed)
{
    Machine central = makeCentral();
    Machine distributed = makeDistributed();
    // Two independent builds of the same kernel hash identically;
    // machine connectivity is part of the key.
    EXPECT_EQ(ContextCache::key(kernel("FFT"), BlockId(0), central),
              ContextCache::key(kernel("FFT"), BlockId(0), central));
    EXPECT_NE(ContextCache::key(kernel("FFT"), BlockId(0), central),
              ContextCache::key(kernel("DCT"), BlockId(0), central));
    EXPECT_NE(ContextCache::key(kernel("FFT"), BlockId(0), central),
              ContextCache::key(kernel("FFT"), BlockId(0), distributed));
}

TEST(ContextCache, CapacityZeroBuildsPrivateEntries)
{
    setVerboseLogging(false);
    Machine central = makeCentral();
    ContextCache cache(0);
    auto first = cache.acquire(kernel("FFT"), BlockId(0), central);
    auto second = cache.acquire(kernel("FFT"), BlockId(0), central);
    EXPECT_NE(first.get(), second.get());
    ContextCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(listingVia(first->context()),
              listingVia(second->context()));
}

TEST(ContextCache, ClearDropsEntriesKeepsCounters)
{
    setVerboseLogging(false);
    Machine central = makeCentral();
    ContextCache cache(4);
    auto held = cache.acquire(kernel("FFT"), BlockId(0), central);
    cache.clear();
    ContextCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.misses, 1u);
    // Held references survive clear(); the next acquire rebuilds.
    auto rebuilt = cache.acquire(kernel("FFT"), BlockId(0), central);
    EXPECT_NE(held.get(), rebuilt.get());
    EXPECT_EQ(listingVia(held->context()),
              listingVia(rebuilt->context()));
}

TEST(ContextCache, CounterEmitterMatchesHandCounts)
{
    ContextCache::Stats stats;
    stats.hits = 7;
    stats.misses = 3;
    stats.evictions = 2;
    stats.entries = 1;
    stats.capacity = 8;
    std::ostringstream json;
    writeCounterObject(json, toCounterSet(stats), kContextCacheCounters);
    // Keys come out sorted regardless of the name-array order
    // (writeCounterObject's contract; pinned again by
    // MetricsJson.CounterObjectSortsKeys).
    EXPECT_EQ(json.str(),
              "{\"capacity\":8,\"entries\":1,\"evictions\":2,"
              "\"hits\":7,\"misses\":3}");
}

TEST(ContextCache, CrossThreadSharingKeepsSchedulesByteIdentical)
{
    setVerboseLogging(false);
    Machine central = makeCentral();
    ContextCache cache(8);

    // Serial references, built without the cache.
    const char *const kNames[] = {"FFT", "DCT"};
    std::string expected[2];
    for (int k = 0; k < 2; ++k) {
        Kernel reference = kernel(kNames[k]);
        PipelineResult result =
            schedulePipelined(reference, BlockId(0), central);
        ASSERT_TRUE(result.success);
        expected[k] = exportListing(result.inner.kernel, central,
                                    result.inner.schedule);
    }

    // Four threads hammer the same two keys: acquires race (first
    // insert wins, losers adopt) and every thread modulo-schedules
    // through whichever shared context it got.
    constexpr int kThreads = 4;
    constexpr int kRounds = 8;
    std::vector<std::thread> threads;
    std::vector<std::string> mismatches[kThreads];
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                int k = (t + round) % 2;
                auto shared =
                    cache.acquire(kernel(kNames[k]), BlockId(0),
                                  central);
                PipelineResult result =
                    schedulePipelined(shared->context());
                if (!result.success) {
                    mismatches[t].push_back("schedule failed");
                    continue;
                }
                std::string listing = exportListing(
                    result.inner.kernel, central,
                    result.inner.schedule);
                if (listing != expected[k])
                    mismatches[t].push_back("listing diverged");
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_TRUE(mismatches[t].empty())
            << "thread " << t << ": " << mismatches[t].size()
            << " mismatches, first: " << mismatches[t].front();

    ContextCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<std::uint64_t>(kThreads * kRounds));
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GE(stats.hits, static_cast<std::uint64_t>(
                              kThreads * kRounds - 2 * kThreads))
        << "at worst every thread race-builds each key once";
}

/**
 * In-flight dedup: N identical jobs submitted together must schedule
 * exactly once — one leader misses, every other copy attaches to the
 * in-flight run — and each returned result must be byte-identical to
 * a singleton run of the same job.
 */
TEST(PipelineDedup, HerdSchedulesOnceAndMatchesSingleton)
{
    setVerboseLogging(false);
    // A mid-weight job (tens of ms): long enough that every herd
    // member is dequeued while the leader still schedules, so the
    // join count is deterministic.
    Machine machine = makeClustered({}, 4);
    auto makeJob = [&] {
        ScheduleJob job;
        job.label = "DCT@Clustered (4)";
        job.kernel = kernel("DCT");
        job.block = BlockId(0);
        job.machine = &machine;
        job.pipelined = true;
        return job;
    };

    PipelineConfig singletonConfig;
    singletonConfig.numThreads = 1;
    SchedulingPipeline singleton(singletonConfig);
    std::vector<JobResult> reference = singleton.run({makeJob()});
    ASSERT_TRUE(reference[0].success);
    CounterSet singletonStats = singleton.statsSnapshot();

    constexpr std::size_t kCopies = 6;
    PipelineConfig herdConfig;
    herdConfig.numThreads = kCopies;
    herdConfig.cacheCapacity = 64;
    SchedulingPipeline pipeline(herdConfig);
    std::vector<ScheduleJob> herd;
    for (std::size_t i = 0; i < kCopies; ++i)
        herd.push_back(makeJob());
    std::vector<JobResult> results = pipeline.run(herd);

    ASSERT_EQ(results.size(), kCopies);
    for (const JobResult &result : results) {
        ASSERT_TRUE(result.success);
        EXPECT_EQ(result.ii, reference[0].ii);
        EXPECT_EQ(result.length, reference[0].length);
        EXPECT_EQ(result.copiesInserted, reference[0].copiesInserted);
        EXPECT_EQ(result.listing, reference[0].listing)
            << "dedup-joined result diverged from the singleton run";
        EXPECT_TRUE(result.verifierErrors.empty());
    }

    CounterSet stats = pipeline.statsSnapshot();
    EXPECT_EQ(stats.get("pipeline.jobs"), kCopies);
    EXPECT_EQ(stats.get("pipeline.cache_misses"), 1u);
    EXPECT_EQ(stats.get("pipeline.dedup_joins"), kCopies - 1);
    EXPECT_EQ(stats.get("pipeline.cache_hits"), 0u);
    EXPECT_EQ(stats.get("pipeline.failures"), 0u);
    // Scheduler counters merge once per actual run: the herd's merged
    // totals equal the singleton's, N-fold counting would not.
    EXPECT_EQ(stats.get("ops_scheduled"),
              singletonStats.get("ops_scheduled"));
    EXPECT_EQ(stats.get("copies_inserted"),
              singletonStats.get("copies_inserted"));
}

TEST(PipelineDedup, DisabledDedupNeverJoins)
{
    setVerboseLogging(false);
    Machine machine = makeCentral();
    std::vector<ScheduleJob> herd;
    for (int i = 0; i < 4; ++i) {
        ScheduleJob job;
        job.label = "FFT@Central";
        job.kernel = kernel("FFT");
        job.block = BlockId(0);
        job.machine = &machine;
        job.pipelined = true;
        herd.push_back(std::move(job));
    }
    PipelineConfig config;
    config.numThreads = 2;
    config.dedupInFlight = false;
    SchedulingPipeline pipeline(config);
    std::vector<JobResult> results = pipeline.run(herd);
    std::string expected = results[0].listing;
    for (const JobResult &result : results) {
        ASSERT_TRUE(result.success);
        EXPECT_EQ(result.listing, expected);
    }
    CounterSet stats = pipeline.statsSnapshot();
    EXPECT_EQ(stats.get("pipeline.dedup_joins"), 0u);
    EXPECT_EQ(stats.get("pipeline.jobs"),
              stats.get("pipeline.cache_hits") +
                  stats.get("pipeline.cache_misses"));
}

} // namespace
} // namespace cs
