/**
 * @file
 * Tests for the register-file cost model: monotonicity in ports and
 * registers, the published asymptotics (central N^3 area / N^1.5
 * delay, distributed N^2 / N), and the paper's headline ratios.
 */

#include <gtest/gtest.h>

#include "costmodel/machine_cost.hpp"
#include "machine/builders.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

TEST(RegFileModel, MonotoneInPortsAndRegisters)
{
    RegFileCost base = regFileCost(32, 4, 2);
    RegFileCost more_ports = regFileCost(32, 8, 2);
    RegFileCost more_regs = regFileCost(64, 4, 2);
    EXPECT_GT(more_ports.area, base.area);
    EXPECT_GT(more_ports.energy, base.energy);
    EXPECT_GT(more_ports.delay, base.delay);
    EXPECT_GT(more_regs.area, base.area);
    EXPECT_GT(more_regs.delay, base.delay);
}

TEST(RegFileModel, PortsDominateAtScale)
{
    // Doubling ports on a port-rich file roughly quadruples area
    // (both cell dimensions grow): the N^3 driver for central files.
    RegFileCost p24 = regFileCost(256, 16, 8);
    RegFileCost p48 = regFileCost(256, 32, 16);
    double ratio = p48.area / p24.area;
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 4.5);
}

TEST(MachineCost, CentralGrowsCubically)
{
    // Area(N) ~ N^3 for the central organization: quadrupling the
    // unit count should scale area by ~64x.
    StdMachineConfig small;
    StdMachineConfig big;
    big.mix = small.mix.scaled(4);
    big.totalRegisters = small.totalRegisters * 4;
    MachineCost c1 = machineCost(makeCentral(small));
    MachineCost c4 = machineCost(makeCentral(big));
    double ratio = c4.area() / c1.area();
    EXPECT_GT(ratio, 30.0);
    EXPECT_LT(ratio, 90.0);
}

TEST(MachineCost, DistributedGrowsQuadratically)
{
    StdMachineConfig small;
    StdMachineConfig big;
    big.mix = small.mix.scaled(4);
    big.totalRegisters = small.totalRegisters * 4;
    big.numGlobalBuses = small.numGlobalBuses * 4;
    MachineCost d1 = machineCost(makeDistributed(small));
    MachineCost d4 = machineCost(makeDistributed(big));
    double ratio = d4.area() / d1.area();
    // ~N^2: quadrupling N gives ~16x, far from the central ~64x.
    EXPECT_GT(ratio, 8.0);
    EXPECT_LT(ratio, 30.0);
}

TEST(MachineCost, PaperHeadlineRatios)
{
    MachineCost central = machineCost(makeCentral());
    MachineCost clustered4 = machineCost(makeClustered({}, 4));
    MachineCost distributed = machineCost(makeDistributed());

    CostRatios vs_central = costRatios(distributed, central);
    // Paper: 9% area, 6% power, 37% delay (tolerate +-30% relative).
    EXPECT_NEAR(vs_central.area, 0.09, 0.03);
    EXPECT_NEAR(vs_central.power, 0.06, 0.02);
    EXPECT_NEAR(vs_central.delay, 0.37, 0.12);

    CostRatios vs_clustered = costRatios(distributed, clustered4);
    // Paper: 56% area, 50% power.
    EXPECT_NEAR(vs_clustered.area, 0.56, 0.17);
    EXPECT_NEAR(vs_clustered.power, 0.50, 0.15);
}

TEST(MachineCost, OrganizationOrdering)
{
    MachineCost central = machineCost(makeCentral());
    MachineCost c2 = machineCost(makeClustered({}, 2));
    MachineCost c4 = machineCost(makeClustered({}, 4));
    MachineCost dist = machineCost(makeDistributed());
    // Figures 25-27 ordering: more, smaller files cost less.
    EXPECT_LT(c2.area(), central.area());
    EXPECT_LT(c4.area(), c2.area());
    EXPECT_LT(dist.area(), c4.area());
    EXPECT_LT(c2.power(), central.power());
    EXPECT_LT(c4.power(), c2.power());
    EXPECT_LT(dist.power(), c4.power());
    EXPECT_LT(dist.delay, central.delay);
}

TEST(MachineCost, FortyEightUnitProjection)
{
    // Conclusion claim: at 48 arithmetic units, distributed needs
    // ~12% of the area and ~9% of the power of clustered(4).
    StdMachineConfig big;
    big.mix = FuMix{}.scaled(4); // 48 arithmetic units
    big.totalRegisters = 1024;
    big.numGlobalBuses = 40;
    MachineCost clustered = machineCost(makeClustered(big, 4));
    MachineCost distributed = machineCost(makeDistributed(big));
    CostRatios r = costRatios(distributed, clustered);
    EXPECT_LT(r.area, 0.35);
    EXPECT_LT(r.power, 0.30);
    // And strictly better than at 12 units: the gap widens with N.
    CostRatios small = costRatios(machineCost(makeDistributed()),
                                  machineCost(makeClustered({}, 4)));
    EXPECT_LT(r.area, small.area);
    EXPECT_LT(r.power, small.power);
}

TEST(MachineCost, RejectsDegenerateShapes)
{
    EXPECT_THROW(regFileCost(0, 1, 1), PanicError);
}

} // namespace
} // namespace cs
