/**
 * @file
 * Tests for the schedule exporters and for undo-journal integrity:
 * scheduling the same kernel with and without injected failures must
 * leave identical results (every failed attempt rolls back exactly).
 */

#include <gtest/gtest.h>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "ir/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"

namespace cs {
namespace {

Kernel
demoKernel()
{
    KernelBuilder b("demo");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val y = b.iadd(x, 1, "y");
    Val z = b.iadd(x, y, "z");
    b.store(200, z);
    return b.take();
}

TEST(Export, ListingMentionsEveryOperation)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result =
        scheduleBlock(demoKernel(), BlockId(0), machine);
    ASSERT_TRUE(result.success);
    std::string listing =
        exportListing(result.kernel, machine, result.schedule);
    EXPECT_NE(listing.find("cycle 0"), std::string::npos);
    for (const Operation &op : result.kernel.operations()) {
        if (op.hasResult()) {
            EXPECT_NE(listing.find(
                          result.kernel.value(op.result).name),
                      std::string::npos)
                << listing;
        }
    }
    // Operand register files are annotated.
    EXPECT_NE(listing.find("<RF"), std::string::npos);
}

TEST(Export, ListingShowsPipelineII)
{
    Machine machine = makeCentral();
    Kernel kernel = demoKernel();
    BlockScheduler scheduler(kernel, BlockId(0), machine,
                             SchedulerOptions{}, 3);
    ScheduleResult result = scheduler.run();
    ASSERT_TRUE(result.success);
    std::string listing =
        exportListing(result.kernel, machine, result.schedule);
    EXPECT_NE(listing.find("II=3"), std::string::npos);
}

TEST(Export, DotIsWellFormedAndComplete)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result =
        scheduleBlock(demoKernel(), BlockId(0), machine);
    ASSERT_TRUE(result.success);
    std::string dot =
        exportRoutesDot(result.kernel, machine, result.schedule);
    EXPECT_EQ(dot.find("digraph routes {"), 0u);
    EXPECT_NE(dot.find("}\n"), std::string::npos);
    // One edge pair per routed communication with a writer.
    std::size_t arrows = 0;
    for (std::size_t pos = dot.find("->"); pos != std::string::npos;
         pos = dot.find("->", pos + 2)) {
        ++arrows;
    }
    std::size_t writer_routes = 0;
    for (const RouteRecord &route : result.schedule.routes()) {
        writer_routes += route.writer.valid() ? 2 : 1;
    }
    EXPECT_EQ(arrows, writer_routes);
}

TEST(UndoIntegrity, FailedAttemptsLeaveNoResidue)
{
    // Schedule a kernel/machine pair where placement rejections and
    // rollbacks definitely occur, twice; byte-identical listings
    // prove the undo journal restores state exactly between attempts.
    Machine machine = makeDistributed();
    Kernel kernel = kernelByName("Block Warp-U2").build();
    ScheduleResult a = scheduleBlock(kernel, BlockId(0), machine);
    ScheduleResult b = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_GT(a.stats.get("comm_sched_rejections"), 0u)
        << "test premise: failures must occur";
    EXPECT_EQ(exportListing(a.kernel, machine, a.schedule),
              exportListing(b.kernel, machine, b.schedule));
    EXPECT_EQ(exportRoutesDot(a.kernel, machine, a.schedule),
              exportRoutesDot(b.kernel, machine, b.schedule));
}

TEST(UndoIntegrity, TightBudgetDoesNotCorruptState)
{
    // Even with an absurdly small permutation budget, failures must
    // be clean: either a valid schedule or a clean failure.
    Machine machine = makeDistributed();
    SchedulerOptions options;
    options.permutationBudget = 8;
    options.copyAttemptBudget = 4;
    Kernel kernel = demoKernel();
    ScheduleResult result =
        scheduleBlock(kernel, BlockId(0), machine, options);
    if (result.success) {
        EXPECT_TRUE(validateSchedule(result.kernel, machine,
                                     result.schedule)
                        .empty());
    } else {
        EXPECT_FALSE(result.failure.empty());
    }
}

} // namespace
} // namespace cs
