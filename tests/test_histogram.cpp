/**
 * @file
 * Unit tests for the streaming histogram (support/histogram.hpp):
 * bucket-scheme correctness, quantile and merge semantics, the
 * MetricsRegistry integration, and a concurrent record/snapshot
 * stress that the sanitizer builds gate on (Histogram* is part of
 * CS_SANITIZE_TESTS).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "support/histogram.hpp"
#include "support/metrics.hpp"

namespace cs {
namespace {

TEST(Histogram, SmallValuesMapToExactBuckets)
{
    // Values below kSub (16) are their own bucket: exact.
    for (std::uint64_t v = 0; v < StreamingHistogram::kSub; ++v) {
        EXPECT_EQ(StreamingHistogram::bucketIndex(v), v);
        EXPECT_EQ(StreamingHistogram::bucketLowerBound(v), v);
    }
}

TEST(Histogram, BucketSchemeIsContinuousAtTheLinearBoundary)
{
    // [16, 32) is the first log-linear octave with 16 sub-buckets of
    // width 1 — indistinguishable from the direct range, so the
    // mapping must be continuous: v -> index v.
    for (std::uint64_t v = 16; v < 32; ++v) {
        EXPECT_EQ(StreamingHistogram::bucketIndex(v), v);
        EXPECT_EQ(StreamingHistogram::bucketLowerBound(v), v);
    }
    // And the next octave starts a new block of 16.
    EXPECT_EQ(StreamingHistogram::bucketIndex(32), 32u);
    EXPECT_EQ(StreamingHistogram::bucketLowerBound(32), 32u);
}

TEST(Histogram, BucketIndexIsMonotoneAndLowerBoundInverts)
{
    // Sweep powers of two and neighbours across the u64 range: the
    // index never decreases in the value, and
    // bucketLowerBound(bucketIndex(v)) is a lower bound within 1/16
    // relative error. The sweep itself revisits smaller values
    // (2^b - 1 < 2^(b-1) + 1 for small b), so monotonicity is checked
    // against the largest value seen so far.
    std::size_t previous = 0;
    std::uint64_t previousValue = 0;
    for (unsigned bit = 0; bit < 64; ++bit) {
        for (std::int64_t offset : {-1, 0, 1}) {
            if (bit == 0 && offset < 0)
                continue;
            std::uint64_t v = (1ull << bit) + offset;
            std::size_t index = StreamingHistogram::bucketIndex(v);
            ASSERT_LT(index, StreamingHistogram::kBuckets);
            if (v >= previousValue) {
                EXPECT_GE(index, previous);
                previous = index;
                previousValue = v;
            }
            std::uint64_t lower =
                StreamingHistogram::bucketLowerBound(index);
            EXPECT_LE(lower, v);
            // Relative error bound: lower > v - v/16 - 1.
            EXPECT_GE(static_cast<double>(lower),
                      static_cast<double>(v) * 15.0 / 16.0 - 1.0);
        }
    }
    EXPECT_EQ(StreamingHistogram::bucketIndex(
                  std::numeric_limits<std::uint64_t>::max()),
              StreamingHistogram::kBuckets - 1);
}

TEST(Histogram, QuantilesOfAKnownDistribution)
{
    // 1..100 recorded once each: p50 is the 50th smallest (=50), p99
    // the 99th (=99) — all below 128 where buckets are narrow, so the
    // lower-bound answer is within one sub-bucket.
    StreamingHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    StreamingHistogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_EQ(snap.total, 5050u);
    EXPECT_EQ(snap.max, 100u);
    EXPECT_DOUBLE_EQ(snap.mean(), 50.5);
    // Sub-bucket width is 4 in [64,128): quantile returns the bucket
    // lower bound, so allow one bucket of slack.
    EXPECT_NEAR(static_cast<double>(snap.quantile(0.5)), 50.0, 4.0);
    EXPECT_NEAR(static_cast<double>(snap.quantile(0.9)), 90.0, 8.0);
    EXPECT_NEAR(static_cast<double>(snap.quantile(0.99)), 99.0, 8.0);
    EXPECT_EQ(snap.quantile(1.0), snap.quantile(0.999));
    // Degenerate quantiles clamp instead of misbehaving.
    EXPECT_EQ(snap.quantile(0.0), snap.quantile(0.001));
    EXPECT_EQ(StreamingHistogram::Snapshot{}.quantile(0.5), 0u);
}

TEST(Histogram, ExactQuantilesBelowTheLinearBoundary)
{
    // All samples below 16: every bucket holds exactly one value, so
    // quantiles are exact order statistics.
    StreamingHistogram h;
    for (std::uint64_t v = 0; v < 16; ++v)
        h.record(v);
    StreamingHistogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.quantile(0.5), 7u);  // ceil(0.5*16) = 8th smallest
    EXPECT_EQ(snap.quantile(1.0), 15u);
    EXPECT_EQ(snap.max, 15u);
}

TEST(Histogram, MergeMatchesUnionOfSamples)
{
    StreamingHistogram a, b, whole;
    for (std::uint64_t v = 1; v <= 50; ++v) {
        a.record(v);
        whole.record(v);
    }
    for (std::uint64_t v = 51; v <= 100; ++v) {
        b.record(v * 7);
        whole.record(v * 7);
    }
    StreamingHistogram::Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    StreamingHistogram::Snapshot expected = whole.snapshot();
    EXPECT_EQ(merged.count, expected.count);
    EXPECT_EQ(merged.total, expected.total);
    EXPECT_EQ(merged.max, expected.max);
    EXPECT_EQ(merged.buckets, expected.buckets);
    EXPECT_EQ(merged.quantile(0.5), expected.quantile(0.5));
}

TEST(Histogram, SummaryCarriesTheEmitterQuantileSet)
{
    StreamingHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(10);
    h.record(5000);
    HistogramSummary s = summarizeHistogram(h.snapshot());
    EXPECT_EQ(s.count, 1001u);
    EXPECT_EQ(s.p50, 10u);
    EXPECT_EQ(s.p90, 10u);
    EXPECT_EQ(s.p99, 10u);
    // The outlier is past p99.9's rank (ceil(0.999*1001) = 1000).
    EXPECT_EQ(s.p999, 10u);
    EXPECT_EQ(s.max, 5000u);
    EXPECT_NEAR(s.mean, (1000.0 * 10 + 5000) / 1001.0, 1e-9);
}

TEST(Histogram, ConcurrentRecordersNeverLoseSamples)
{
    // The TSan surface: four writers hammer record() while a reader
    // snapshots continuously. Every sample must land in exactly one
    // final bucket and count must equal the bucket sum at all times.
    StreamingHistogram h;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                h.record(i % 97 + static_cast<std::uint64_t>(t));
        });
    }
    std::uint64_t lastCount = 0;
    for (int i = 0; i < 200; ++i) {
        StreamingHistogram::Snapshot snap = h.snapshot();
        // count is derived from the buckets, so it is always the
        // bucket sum by construction; it must also be monotone across
        // snapshots.
        EXPECT_GE(snap.count, lastCount);
        lastCount = snap.count;
    }
    for (std::thread &w : writers)
        w.join();
    StreamingHistogram::Snapshot final = h.snapshot();
    EXPECT_EQ(final.count, kThreads * kPerThread);
}

TEST(HistogramRegistry, NamedInstancesAreStableAndDumped)
{
    MetricsRegistry registry;
    StreamingHistogram &h = registry.streamingHistogram("lat");
    // Same name -> same instance (hot paths cache the pointer).
    EXPECT_EQ(&registry.streamingHistogram("lat"), &h);
    h.record(7);
    h.record(9);
    registry.gauge("depth").store(3);

    auto snaps = registry.streamingSnapshot();
    ASSERT_EQ(snaps.count("lat"), 1u);
    EXPECT_EQ(snaps["lat"].count, 2u);

    std::ostringstream json;
    registry.writeJson(json);
    EXPECT_NE(json.str().find("\"streaming\":{\"lat\":{\"count\":2"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"gauges\":{\"depth\":3}"),
              std::string::npos);
}

TEST(MetricsJson, CounterObjectSortsKeys)
{
    // Pin: writeCounterObject emits sorted key order no matter how
    // the name array is ordered, so counter dumps diff cleanly across
    // front-ends and versions.
    CounterSet counters;
    counters.bump("zeta", 1);
    counters.bump("alpha", 2);
    counters.bump("mid", 3);
    static const char *const kNames[] = {"zeta", "mid", "alpha"};
    std::ostringstream json;
    writeCounterObject(json, counters, kNames);
    EXPECT_EQ(json.str(), "{\"alpha\":2,\"mid\":3,\"zeta\":1}");
}

} // namespace
} // namespace cs
