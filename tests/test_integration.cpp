/**
 * @file
 * End-to-end integration: every Table-1 kernel on every standard
 * register-file architecture, scheduled both as a plain block and
 * software-pipelined, structurally validated, executed on the
 * datapath simulator, and compared bit-for-bit against the scalar
 * reference. This is the repository's core correctness statement:
 * communication scheduling produces executable schedules on shared-
 * interconnect machines.
 */

#include <gtest/gtest.h>

#include "machine/builders.hpp"
#include "sim/harness.hpp"

namespace cs {
namespace {

struct Config
{
    int kernelIndex;
    int machineKind; // 0 central, 1 clustered2, 2 clustered4, 3 dist
    bool pipelined;
};

Machine
machineFor(int kind)
{
    switch (kind) {
      case 0: return makeCentral();
      case 1: return makeClustered({}, 2);
      case 2: return makeClustered({}, 4);
      default: return makeDistributed();
    }
}

const char *
machineName(int kind)
{
    switch (kind) {
      case 0: return "central";
      case 1: return "clustered2";
      case 2: return "clustered4";
      default: return "distributed";
    }
}

class EndToEnd : public ::testing::TestWithParam<Config>
{
};

TEST_P(EndToEnd, ScheduleValidateSimulateMatch)
{
    const Config &config = GetParam();
    const KernelSpec &spec = allKernels()[config.kernelIndex];
    Machine machine = machineFor(config.machineKind);

    KernelRunResult result =
        runKernel(spec, machine, config.pipelined);
    EXPECT_TRUE(result.scheduled);
    EXPECT_TRUE(result.valid);
    EXPECT_TRUE(result.simulated);
    EXPECT_TRUE(result.matches);
    for (const auto &p : result.problems)
        ADD_FAILURE() << spec.name << " on "
                      << machineName(config.machineKind) << ": " << p;
    EXPECT_GT(result.cyclesPerIteration, 0);
    // A central register file never needs copies.
    if (config.machineKind == 0)
        EXPECT_EQ(result.copies, 0);
}

std::vector<Config>
allConfigs()
{
    std::vector<Config> configs;
    for (int k = 0; k < 10; ++k) {
        for (int m = 0; m < 4; ++m) {
            configs.push_back({k, m, false});
            configs.push_back({k, m, true});
        }
    }
    return configs;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllMachines, EndToEnd, ::testing::ValuesIn(allConfigs()),
    [](const auto &info) {
        const Config &c = info.param;
        std::string name = allKernels()[c.kernelIndex].name;
        for (char &ch : name) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        name += std::string("_") + machineName(c.machineKind);
        name += c.pipelined ? "_pipelined" : "_plain";
        return name;
    });

TEST(Performance, DistributedTracksCentral)
{
    // The headline result at coarse tolerance: the geometric-mean
    // slowdown of the distributed machine versus central is small,
    // and far smaller than its area/power advantage.
    Machine central = makeCentral();
    Machine distributed = makeDistributed();
    std::vector<double> speedups;
    for (const KernelSpec &spec : allKernels()) {
        if (spec.name == "Sort" || spec.name == "Merge")
            continue; // covered by the bench; keep the test quick
        int c = scheduleCyclesPerIteration(spec, central, true);
        int d = scheduleCyclesPerIteration(spec, distributed, true);
        speedups.push_back(static_cast<double>(c) / d);
    }
    double overall = geometricMean(speedups);
    EXPECT_GT(overall, 0.75); // paper: 0.98; shape, not exact value
    EXPECT_LE(overall, 1.001);
}

TEST(Performance, ClusteredPaysForCopies)
{
    Machine central = makeCentral();
    Machine clustered = makeClustered({}, 4);
    std::vector<double> speedups;
    for (const KernelSpec &spec : allKernels()) {
        if (spec.name == "Sort" || spec.name == "Merge")
            continue;
        int c = scheduleCyclesPerIteration(spec, central, true);
        int cl = scheduleCyclesPerIteration(spec, clustered, true);
        speedups.push_back(static_cast<double>(c) / cl);
    }
    double overall = geometricMean(speedups);
    // Copies cost real performance (paper: 0.82 overall).
    EXPECT_LT(overall, 1.0);
    EXPECT_GT(overall, 0.55);
}

} // namespace
} // namespace cs
