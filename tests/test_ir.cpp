/**
 * @file
 * Unit tests for the IR: builder, kernel container, copy insertion
 * round-trips, verifier findings, and dependence-graph analyses.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/ddg.hpp"
#include "ir/verifier.hpp"
#include "machine/builders.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

Kernel
chainKernel()
{
    KernelBuilder b("chain");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val y = b.iadd(x, 1, "y");
    Val z = b.imul(y, y, "z");
    b.store(200, z);
    return b.take();
}

TEST(Builder, ProducesExpectedOps)
{
    Kernel k = chainKernel();
    EXPECT_EQ(k.numBlocks(), 1u);
    EXPECT_EQ(k.numOperations(), 4u);
    EXPECT_EQ(k.numValues(), 3u);
    const Operation &add = k.operation(OperationId(1));
    EXPECT_EQ(add.opcode, Opcode::IAdd);
    ASSERT_EQ(add.operands.size(), 2u);
    EXPECT_TRUE(add.operands[0].isValue());
    EXPECT_TRUE(add.operands[1].isImmediate());
}

TEST(Builder, UseListsTrackConsumers)
{
    Kernel k = chainKernel();
    const Operation &mul = k.operation(OperationId(2));
    // z = y * y: y has two uses in the mul plus none elsewhere.
    ValueId y = mul.operands[0].value;
    EXPECT_EQ(k.value(y).uses.size(), 2u);
    ValueId z = mul.result;
    EXPECT_EQ(k.value(z).uses.size(), 1u);
}

TEST(Builder, ArityChecked)
{
    KernelBuilder b("bad");
    b.block("body");
    EXPECT_THROW(b.emit(Opcode::IAdd, {Arg(1)}), PanicError);
}

TEST(Builder, LoopCarriedDistance)
{
    KernelBuilder b("acc");
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    Val acc = b.fadd(x, 0.0, "acc0");
    Val sum = b.fadd(acc.at(1), x, "sum");
    (void)sum;
    Kernel k = b.take();
    const Operation &op = k.operation(OperationId(2));
    EXPECT_EQ(op.operands[0].distance, 1);
    EXPECT_EQ(op.operands[1].distance, 0);
}

TEST(Kernel, InsertCopyRetargetsUses)
{
    Kernel k = chainKernel();
    const Operation &mul = k.operation(OperationId(2));
    ValueId y = mul.operands[0].value;
    OperationId copy =
        k.insertCopy(BlockId(0), y, {{OperationId(2), 0}});
    EXPECT_EQ(k.numOperations(), 5u);
    // Slot 0 now reads the copy, slot 1 still reads y.
    const Operation &mul2 = k.operation(OperationId(2));
    EXPECT_NE(mul2.operands[0].value, y);
    EXPECT_EQ(mul2.operands[1].value, y);
    EXPECT_EQ(k.value(y).uses.size(), 2u); // copy + mul slot 1
    EXPECT_TRUE(verifyKernel(k).empty());
    (void)copy;
}

TEST(Kernel, RemoveLastCopyRoundTrip)
{
    Kernel k = chainKernel();
    ValueId y = k.operation(OperationId(2)).operands[0].value;
    std::string before = k.toString();
    OperationId copy =
        k.insertCopy(BlockId(0), y, {{OperationId(2), 0}});
    k.removeLastCopy(copy);
    EXPECT_EQ(k.toString(), before);
    EXPECT_TRUE(verifyKernel(k).empty());
}

TEST(Kernel, HistogramCountsClasses)
{
    Kernel k = chainKernel();
    auto h = k.opcodeClassHistogram();
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::Add)], 1u);
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::Multiply)], 1u);
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::LoadStore)], 2u);
}

TEST(Verifier, AcceptsGoodKernel)
{
    Kernel k = chainKernel();
    EXPECT_TRUE(verifyKernel(k).empty());
}

TEST(Verifier, CatchesCarriedOperandOutsideLoop)
{
    KernelBuilder b("bad");
    b.block("straight", false);
    Val x = b.load(100, 0, "x");
    b.iadd(x.at(1), 1, "y");
    Kernel k = b.take();
    auto issues = verifyKernel(k);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("loop-carried"),
              std::string::npos);
}

TEST(Verifier, ExecutabilityCheck)
{
    KernelBuilder b("div");
    b.block("body");
    Val x = b.load(100, 0, "x");
    b.fdiv(x, 2.0, "y");
    Kernel k = b.take();

    std::string why;
    EXPECT_TRUE(kernelExecutableOn(k, makeCentral(), &why)) << why;
    // The Figure-5 toy machine has no divider.
    EXPECT_FALSE(kernelExecutableOn(k, makeFigure5Machine(), &why));
    EXPECT_NE(why.find("divide"), std::string::npos);
}

TEST(Ddg, AsapAndHeights)
{
    Machine m = makeCentral(); // load 2, iadd 1, imul 2, store 1
    Kernel k = chainKernel();
    Ddg ddg(k, BlockId(0), m);
    ASSERT_EQ(ddg.numOps(), 4u);
    EXPECT_EQ(ddg.asap(0), 0); // load
    EXPECT_EQ(ddg.asap(1), 2); // iadd after load
    EXPECT_EQ(ddg.asap(2), 3); // imul
    EXPECT_EQ(ddg.asap(3), 5); // store
    EXPECT_EQ(ddg.criticalPathLength(), 6);
    // Heights: load at the top of the whole chain.
    EXPECT_EQ(ddg.height(0), 6);
    EXPECT_EQ(ddg.height(3), 1);
}

TEST(Ddg, TopoOrderRespectsDeps)
{
    Kernel k = chainKernel();
    Machine m = makeCentral();
    Ddg ddg(k, BlockId(0), m);
    const auto &topo = ddg.topoOrder();
    std::vector<int> position(topo.size());
    for (std::size_t i = 0; i < topo.size(); ++i)
        position[topo[i]] = static_cast<int>(i);
    for (const DepEdge &edge : ddg.edges()) {
        if (edge.distance == 0) {
            EXPECT_LT(position[ddg.indexOf(edge.from)],
                      position[ddg.indexOf(edge.to)]);
        }
    }
}

TEST(Ddg, MemoryOrderingEdges)
{
    KernelBuilder b("mem");
    b.block("body");
    Val x = b.load(100, 0, "x");
    b.store(100, x);
    Val y = b.load(100, 0, "y");
    (void)y;
    Kernel k = b.take();
    // Same alias class for all three.
    const_cast<Operation &>(k.operation(OperationId(0))).aliasClass = 1;
    const_cast<Operation &>(k.operation(OperationId(1))).aliasClass = 1;
    const_cast<Operation &>(k.operation(OperationId(2))).aliasClass = 1;
    Machine m = makeCentral();
    Ddg ddg(k, BlockId(0), m);
    int memory_edges = 0;
    for (const DepEdge &edge : ddg.edges()) {
        if (edge.kind == DepEdge::Kind::Memory)
            ++memory_edges;
    }
    // load->store (WAR) and store->load (RAW); no load-load edge.
    EXPECT_EQ(memory_edges, 2);
}

TEST(Ddg, ResMiiFromUnitCounts)
{
    // Six multiplies on three multipliers: ResMII == 2.
    KernelBuilder b("mulheavy");
    b.block("loop", true);
    for (int i = 0; i < 6; ++i) {
        Val x = b.load(100 + i, 8);
        b.imul(x, 3);
    }
    Kernel k = b.take();
    Machine m = makeCentral();
    Ddg ddg(k, BlockId(0), m);
    // 6 loads on 4 ls units: ceil(6/4) = 2; 6 muls on 3: 2.
    EXPECT_EQ(ddg.resMii(), 2);
}

TEST(Ddg, RecMiiFromRecurrence)
{
    // acc = fadd(acc@1, x): recurrence latency 2, distance 1 -> 2.
    KernelBuilder b("acc");
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    Val acc = b.fadd(x, 0.0, "seed");
    const_cast<Operation &>(b.take().operation(OperationId(1)));
    (void)acc;
    KernelBuilder b2("acc2");
    b2.block("loop", true);
    Val x2 = b2.load(100, 1, "x");
    Val sum = b2.emit(Opcode::FAdd, {Arg(x2), Arg(x2)}, "sum");
    // Make sum depend on itself across one iteration.
    Kernel k = b2.take();
    const_cast<Operation &>(k.operation(OperationId(1))).operands[1] =
        Operand::fromValue(k.operation(OperationId(1)).result, 1);
    const_cast<Value &>(k.value(k.operation(OperationId(1)).result))
        .uses.emplace_back(OperationId(1), 1);
    Machine m = makeCentral();
    Ddg ddg(k, BlockId(0), m);
    EXPECT_EQ(ddg.recMii(), m.latency(Opcode::FAdd));
    (void)sum;
}

TEST(Ddg, RecMiiOneWithoutCarriedEdges)
{
    Kernel k = chainKernel();
    Machine m = makeCentral();
    Ddg ddg(k, BlockId(0), m);
    EXPECT_EQ(ddg.recMii(), 1);
}

} // namespace
} // namespace cs
