/**
 * @file
 * Tests for the Table-1 kernel suite: every kernel builds valid IR,
 * is executable on the standard machines, has the op mix its
 * description implies, and the numerically interesting ones are
 * checked against analytic formulas (not just the dataflow mirror).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>

#include "ir/verifier.hpp"
#include "support/logging.hpp"
#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "support/fixed_point.hpp"

namespace cs {
namespace {

TEST(Kernels, AllTenPresent)
{
    const auto &all = allKernels();
    ASSERT_EQ(all.size(), 10u);
    EXPECT_EQ(all[0].name, "DCT");
    EXPECT_EQ(all[9].name, "Merge");
    EXPECT_EQ(kernelByName("FIR-FP").name, "FIR-FP");
    EXPECT_THROW(kernelByName("nope"), FatalError);
}

class KernelSuite : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelSuite, BuildsValidSingleLoopIr)
{
    const KernelSpec &spec = allKernels()[GetParam()];
    Kernel kernel = spec.build();
    EXPECT_EQ(kernel.numBlocks(), 1u);
    EXPECT_TRUE(kernel.blocks()[0].isLoop);
    auto issues = verifyKernel(kernel);
    for (const auto &issue : issues)
        ADD_FAILURE() << spec.name << ": " << issue.message;
}

TEST_P(KernelSuite, ExecutableOnAllStandardMachines)
{
    const KernelSpec &spec = allKernels()[GetParam()];
    Kernel kernel = spec.build();
    std::string why;
    EXPECT_TRUE(kernelExecutableOn(kernel, makeCentral(), &why)) << why;
    EXPECT_TRUE(kernelExecutableOn(kernel, makeClustered({}, 2), &why))
        << why;
    EXPECT_TRUE(kernelExecutableOn(kernel, makeClustered({}, 4), &why))
        << why;
    EXPECT_TRUE(kernelExecutableOn(kernel, makeDistributed(), &why))
        << why;
}

TEST_P(KernelSuite, ReferenceIsDeterministic)
{
    const KernelSpec &spec = allKernels()[GetParam()];
    MemoryImage a, b;
    Rng ra(5), rb(5);
    spec.init(a, ra);
    spec.init(b, rb);
    spec.reference(a, 4);
    spec.reference(b, 4);
    EXPECT_EQ(a.cells().size(), b.cells().size());
    EXPECT_TRUE(a.cells() == b.cells());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSuite,
                         ::testing::Range(0, 10),
                         [](const auto &info) {
                             std::string n =
                                 allKernels()[info.param].name;
                             for (char &c : n) {
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(KernelMix, FirHas56Multiplies)
{
    Kernel k = kernelByName("FIR-FP").build();
    auto h = k.opcodeClassHistogram();
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::Multiply)], 56u);
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::Add)], 55u);
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::LoadStore)], 2u);
}

TEST(KernelMix, UnrolledVariantsScale)
{
    Kernel fft = kernelByName("FFT").build();
    Kernel fft4 = kernelByName("FFT-U4").build();
    EXPECT_EQ(fft4.numOperations(), 4 * fft.numOperations());
    Kernel warp = kernelByName("Block Warp").build();
    Kernel warp2 = kernelByName("Block Warp-U2").build();
    EXPECT_EQ(warp2.numOperations(), 2 * warp.numOperations());
}

TEST(KernelMix, TriangleHasSixDivides)
{
    Kernel k = kernelByName("Triangle Transform").build();
    auto h = k.opcodeClassHistogram();
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::Divide)], 6u);
}

TEST(KernelMix, SortUsesBatcherNetworkSize)
{
    Kernel k = kernelByName("Sort").build();
    auto pairs = kern::oddEvenMergeSortPairs(32);
    auto h = k.opcodeClassHistogram();
    // One imin + one imax per compare-exchange.
    EXPECT_EQ(h[static_cast<std::size_t>(OpClass::Add)],
              2 * pairs.size());
}

TEST(Networks, OddEvenMergeSortSorts)
{
    for (int n : {4, 8, 16, 32}) {
        auto pairs = kern::oddEvenMergeSortPairs(n);
        Rng rng(n);
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<std::int64_t> v(n);
            for (auto &x : v)
                x = rng.uniformInt(-100, 100);
            auto sorted = v;
            std::sort(sorted.begin(), sorted.end());
            for (auto [i, j] : pairs) {
                if (v[i] > v[j])
                    std::swap(v[i], v[j]);
            }
            EXPECT_EQ(v, sorted) << "n=" << n;
        }
    }
}

TEST(Networks, BitonicMergeMergesSortedHalves)
{
    const int n = 32;
    auto pairs = kern::bitonicMergePairs(n);
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::int64_t> a(n / 2), b(n / 2);
        for (auto &x : a)
            x = rng.uniformInt(-100, 100);
        for (auto &x : b)
            x = rng.uniformInt(-100, 100);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        std::vector<std::int64_t> v(n);
        for (int i = 0; i < n / 2; ++i) {
            v[i] = a[i];
            v[n / 2 + i] = b[n / 2 - 1 - i]; // reversed: bitonic
        }
        for (auto [i, j] : pairs) {
            if (v[i] > v[j])
                std::swap(v[i], v[j]);
        }
        std::vector<std::int64_t> expect;
        expect.insert(expect.end(), a.begin(), a.end());
        expect.insert(expect.end(), b.begin(), b.end());
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(v, expect);
    }
}

TEST(DctAccuracy, MatchesAnalyticDctWithinFixedPointError)
{
    // Run the DCT reference on one row and compare against the
    // analytic (unnormalized, C4-scaled-DC) DCT-II formula in doubles.
    const KernelSpec &spec = kernelByName("DCT");
    MemoryImage mem;
    Rng rng(11);
    spec.init(mem, rng);
    spec.reference(mem, 1);

    double in[8];
    for (int n = 0; n < 8; ++n)
        in[n] = static_cast<double>(mem.loadInt(kern::kRegionA + n));
    for (int k = 0; k < 8; ++k) {
        double expect = 0.0;
        for (int n = 0; n < 8; ++n) {
            expect +=
                in[n] * std::cos((2 * n + 1) * k * M_PI / 16.0);
        }
        if (k == 0 || k == 4)
            expect *= std::cos(4.0 * M_PI / 16.0);
        if (k == 4)
            expect /= std::cos(4.0 * M_PI / 16.0); // X4 scaled once
        double got = static_cast<double>(
            mem.loadInt(kern::kRegionOut + k));
        // Q8.8 coefficients: relative error within ~1%, plus rounding.
        EXPECT_NEAR(got, expect, std::abs(expect) * 0.02 + 16.0)
            << "k=" << k;
    }
}

TEST(FirAccuracy, ImpulseResponseRecoversCoefficients)
{
    // Feed a unit impulse: the FIR outputs must reproduce the
    // coefficient sequence.
    const KernelSpec &spec = kernelByName("FIR-FP");
    MemoryImage mem;
    mem.storeFloat(kern::kRegionA + 0, 1.0); // impulse at t=0
    spec.reference(mem, 16);
    const auto &coeffs = kern::firCoefficients();
    for (int i = 0; i < 16; ++i) {
        EXPECT_NEAR(mem.loadFloat(kern::kRegionOut + i), coeffs[i],
                    1e-12)
            << "tap " << i;
    }
}

TEST(FixedFir, MatchesFloatWithinQuantization)
{
    const KernelSpec &fp = kernelByName("FIR-FP");
    const KernelSpec &ip = kernelByName("FIR-INT");
    MemoryImage mf, mi;
    Rng rf(21), ri(21);
    fp.init(mf, rf);
    ip.init(mi, ri);
    fp.reference(mf, 8);
    ip.reference(mi, 8);
    for (int i = 0; i < 8; ++i) {
        double fp_out = mf.loadFloat(kern::kRegionOut + i);
        double int_out = fromFixed(static_cast<std::int32_t>(
            mi.loadInt(kern::kRegionOut + i)));
        EXPECT_NEAR(fp_out, int_out, 0.15) << "sample " << i;
    }
}

} // namespace
} // namespace cs
