/**
 * @file
 * Unit tests for the machine model: builder integrity, stub
 * enumeration, copy distances, the Appendix-A copy-connectivity check,
 * and the standard architecture shapes of the paper's Section 5.
 */

#include <gtest/gtest.h>

#include "machine/builder.hpp"
#include "machine/builders.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

/** A tiny two-unit machine with one shared bus, used across tests. */
Machine
tinySharedMachine()
{
    MachineBuilder b("tiny");
    RegFileId rf0 = b.addRegFile("RF0", 8);
    RegFileId rf1 = b.addRegFile("RF1", 8);
    FuncUnitId fu0 =
        b.addFuncUnit("A", {OpClass::Add, OpClass::CopyCls}, 2);
    FuncUnitId fu1 =
        b.addFuncUnit("B", {OpClass::Add, OpClass::CopyCls}, 2);
    for (int s = 0; s < 2; ++s) {
        b.connectReadDirect(rf0, b.input(fu0, s));
        b.connectReadDirect(rf1, b.input(fu1, s));
    }
    BusId bus = b.addBus("shared");
    WritePortId wp0 = b.addWritePort(rf0);
    WritePortId wp1 = b.addWritePort(rf1);
    b.connectOutputToBus(b.output(fu0), bus);
    b.connectOutputToBus(b.output(fu1), bus);
    b.connectBusToWritePort(bus, wp0);
    b.connectBusToWritePort(bus, wp1);
    return b.build();
}

TEST(MachineBuilder, EntityCounts)
{
    Machine m = tinySharedMachine();
    EXPECT_EQ(m.numFuncUnits(), 2u);
    EXPECT_EQ(m.numRegFiles(), 2u);
    EXPECT_EQ(m.numReadPorts(), 4u);
    EXPECT_EQ(m.numWritePorts(), 2u);
    EXPECT_EQ(m.numInputPorts(), 4u);
    EXPECT_EQ(m.numOutputPorts(), 2u);
    // 4 dedicated read wires + 1 shared bus.
    EXPECT_EQ(m.numBuses(), 5u);
}

TEST(MachineBuilder, PortOwnership)
{
    Machine m = tinySharedMachine();
    for (std::uint32_t i = 0; i < m.numReadPorts(); ++i) {
        RegFileId rf = m.readPortRegFile(ReadPortId(i));
        EXPECT_TRUE(rf.valid());
    }
    FuncUnitId fu0(0);
    const FuncUnit &unit = m.funcUnit(fu0);
    EXPECT_EQ(m.outputFuncUnit(unit.output), fu0);
    EXPECT_EQ(m.inputFuncUnit(unit.inputs[1]), fu0);
    EXPECT_EQ(m.inputSlot(unit.inputs[1]), 1);
}

TEST(MachineBuilder, UnitsForClass)
{
    Machine m = tinySharedMachine();
    EXPECT_EQ(m.unitsForClass(OpClass::Add).size(), 2u);
    EXPECT_EQ(m.unitsForClass(OpClass::Divide).size(), 0u);
    EXPECT_EQ(m.unitsForOpcode(Opcode::IAdd).size(), 2u);
}

TEST(MachineBuilder, StubEnumeration)
{
    Machine m = tinySharedMachine();
    FuncUnitId fu0(0);
    // One shared bus to two write ports: two write stubs.
    EXPECT_EQ(m.writeStubs(fu0).size(), 2u);
    // Each slot reads its own file through one dedicated wire.
    EXPECT_EQ(m.readStubs(fu0, 0).size(), 1u);
    EXPECT_EQ(m.readStubs(fu0, 1).size(), 1u);
    EXPECT_EQ(m.readStubsAnySlot(fu0).size(), 2u);
    EXPECT_EQ(m.writableRegFiles(fu0).size(), 2u);
    EXPECT_EQ(m.readableRegFiles(fu0, 0).size(), 1u);
}

TEST(MachineBuilder, CopyDistances)
{
    Machine m = tinySharedMachine();
    RegFileId rf0(0), rf1(1);
    EXPECT_EQ(m.copyDistance(rf0, rf0), 0);
    // A can read RF0 and write both files: one copy.
    EXPECT_EQ(m.copyDistance(rf0, rf1), 1);
    EXPECT_EQ(m.copyDistance(rf1, rf0), 1);
}

TEST(MachineBuilder, CopyConnectedPositive)
{
    Machine m = tinySharedMachine();
    std::string why;
    EXPECT_TRUE(m.checkCopyConnected(&why)) << why;
}

TEST(MachineBuilder, CopyConnectedNegative)
{
    // Two isolated islands with no copy capability between them.
    MachineBuilder b("island");
    RegFileId rf0 = b.addRegFile("RF0", 8);
    RegFileId rf1 = b.addRegFile("RF1", 8);
    FuncUnitId fu0 = b.addFuncUnit("A", {OpClass::Add}, 2);
    FuncUnitId fu1 = b.addFuncUnit("B", {OpClass::Add}, 2);
    for (int s = 0; s < 2; ++s) {
        b.connectReadDirect(rf0, b.input(fu0, s));
        b.connectReadDirect(rf1, b.input(fu1, s));
    }
    b.connectWriteDirect(b.output(fu0), rf0);
    b.connectWriteDirect(b.output(fu1), rf1);
    Machine m = b.build();
    std::string why;
    EXPECT_FALSE(m.checkCopyConnected(&why));
    EXPECT_FALSE(why.empty());
}

TEST(MachineBuilder, RejectsUnconnectedInput)
{
    MachineBuilder b("bad");
    b.addRegFile("RF", 8);
    b.addFuncUnit("A", {OpClass::Add}, 2);
    // Never wired: build must fail.
    EXPECT_THROW(b.build(), PanicError);
}

TEST(MachineBuilder, LatencyDefaultsAndOverrides)
{
    MachineBuilder b("lat");
    RegFileId rf = b.addRegFile("RF", 8);
    FuncUnitId fu = b.addFuncUnit(
        "A", {OpClass::Add, OpClass::Divide, OpClass::LoadStore}, 2);
    for (int s = 0; s < 2; ++s)
        b.connectReadDirect(rf, b.input(fu, s));
    b.connectWriteDirect(b.output(fu), rf);
    b.setLatency(Opcode::IAdd, 3);
    Machine m = b.build();
    EXPECT_EQ(m.latency(Opcode::IAdd), 3);
    EXPECT_EQ(m.latency(Opcode::FDiv), defaultLatency(Opcode::FDiv));
}

TEST(StandardMachines, CentralShape)
{
    Machine m = makeCentral();
    EXPECT_EQ(m.numFuncUnits(), 16u);
    EXPECT_EQ(m.numRegFiles(), 1u);
    // Every input/output has a dedicated port.
    EXPECT_EQ(m.numReadPorts(), 32u);
    EXPECT_EQ(m.numWritePorts(), 16u);
    // Exactly one stub option everywhere: conventional scheduling
    // territory.
    for (std::uint32_t f = 0; f < m.numFuncUnits(); ++f) {
        EXPECT_EQ(m.writeStubs(FuncUnitId(f)).size(), 1u);
        EXPECT_EQ(m.readStubs(FuncUnitId(f), 0).size(), 1u);
    }
}

TEST(StandardMachines, Clustered4Shape)
{
    Machine m = makeClustered({}, 4);
    // 16 standard units + 4 copy units.
    EXPECT_EQ(m.numFuncUnits(), 20u);
    EXPECT_EQ(m.numRegFiles(), 4u);
    EXPECT_EQ(m.unitsForClass(OpClass::CopyCls).size(), 4u);
    // Inter-cluster values move only through copy units.
    std::string why;
    EXPECT_TRUE(m.checkCopyConnected(&why)) << why;
    // Corner-to-corner copies exist (possibly multi-hop).
    for (std::uint32_t a = 0; a < 4; ++a) {
        for (std::uint32_t b = 0; b < 4; ++b) {
            EXPECT_LT(m.copyDistance(RegFileId(a), RegFileId(b)),
                      Machine::kUnreachable);
        }
    }
}

TEST(StandardMachines, DistributedShape)
{
    Machine m = makeDistributed();
    EXPECT_EQ(m.numFuncUnits(), 16u);
    // One register file per operand slot.
    EXPECT_EQ(m.numRegFiles(), 32u);
    // Ten shared result buses (the rest are dedicated read wires).
    int shared = 0;
    for (std::uint32_t b = 0; b < m.numBuses(); ++b) {
        if (m.busEndpointCount(BusId(b)) > 2)
            ++shared;
    }
    EXPECT_EQ(shared, 10);
    // Every output can hit every file: 10 buses x 32 ports.
    EXPECT_EQ(m.writeStubs(FuncUnitId(0)).size(), 320u);
    // The scratchpad does not copy (paper Section 5).
    EXPECT_EQ(m.unitsForClass(OpClass::CopyCls).size(), 15u);
}

TEST(StandardMachines, DistributedBusCountConfigurable)
{
    StdMachineConfig cfg;
    cfg.numGlobalBuses = 4;
    Machine m = makeDistributed(cfg);
    EXPECT_EQ(m.writeStubs(FuncUnitId(0)).size(), 4u * 32u);
}

TEST(StandardMachines, ScaledMix)
{
    FuMix mix;
    FuMix big = mix.scaled(4);
    EXPECT_EQ(big.adders, 24);
    EXPECT_EQ(big.total(), 64);
    EXPECT_EQ(big.arithmetic(), 48);
    StdMachineConfig cfg;
    cfg.mix = big;
    Machine m = makeClustered(cfg, 4);
    EXPECT_EQ(m.numFuncUnits(), 64u + 4u);
    std::string why;
    EXPECT_TRUE(m.checkCopyConnected(&why)) << why;
}

TEST(StandardMachines, Figure5Wiring)
{
    Machine m = makeFigure5Machine();
    EXPECT_EQ(m.numFuncUnits(), 3u);
    EXPECT_EQ(m.numRegFiles(), 3u);
    // The center file's single write port is reachable from both
    // shared buses, so the LS unit has three write stubs (busX->RFL,
    // busX->RFC, busY->RFR, busY->RFC) = 4.
    FuncUnitId ls(1);
    EXPECT_EQ(m.writeStubs(ls).size(), 4u);
    FuncUnitId add0(0);
    EXPECT_EQ(m.writeStubs(add0).size(), 2u);
    // Unit latency, per the paper's illustration.
    EXPECT_EQ(m.latency(Opcode::Load), 1);
}

TEST(StubConflicts, WriteStubRules)
{
    Machine m = tinySharedMachine();
    const auto &stubs = m.writeStubs(FuncUnitId(0));
    ASSERT_EQ(stubs.size(), 2u);
    // Same bus, different ports: shares a resource.
    EXPECT_TRUE(writeStubsShareResource(stubs[0], stubs[1]));
    // Same result into different files via one bus: broadcast, legal.
    EXPECT_FALSE(sameResultWriteStubsConflict(m, stubs[0], stubs[1]));
    // Identical stubs never conflict with themselves.
    EXPECT_FALSE(sameResultWriteStubsConflict(m, stubs[0], stubs[0]));
}

TEST(StubConflicts, ReadStubRules)
{
    Machine m = tinySharedMachine();
    const auto &slot0 = m.readStubs(FuncUnitId(0), 0);
    const auto &slot1 = m.readStubs(FuncUnitId(0), 1);
    ASSERT_EQ(slot0.size(), 1u);
    ASSERT_EQ(slot1.size(), 1u);
    // Different dedicated wires: no sharing.
    EXPECT_FALSE(readStubsShareResource(slot0[0], slot1[0]));
    EXPECT_TRUE(readStubsShareResource(slot0[0], slot0[0]));
}

TEST(StubConflicts, Describe)
{
    Machine m = tinySharedMachine();
    std::string w = describe(m, m.writeStubs(FuncUnitId(0))[0]);
    EXPECT_NE(w.find("A.out"), std::string::npos);
    std::string r = describe(m, m.readStubs(FuncUnitId(0), 0)[0]);
    EXPECT_NE(r.find("A.in0"), std::string::npos);
}

} // namespace
} // namespace cs
