#include <gtest/gtest.h>

#include "support/logging.hpp"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    cs::setVerboseLogging(false);
    return RUN_ALL_TESTS();
}
