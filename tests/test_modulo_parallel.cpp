/**
 * @file
 * Speculative parallel II search (pipeline/ii_search.hpp): the
 * determinism contract. The parallel search must return the same
 * achieved II and a byte-identical canonical listing as the serial
 * sweep — pinned against the same golden fingerprints the serial
 * equivalence suite uses — for every pipelined configuration, and the
 * attempt accounting must reconcile: attempts - attemptsWasted equals
 * the serial sweep's attempt count exactly.
 *
 * These tests are also the TSan gate for the cooperative-abort
 * machinery (see .claude/skills/verify/SKILL.md): the abort flags are
 * raised concurrently with running schedulers, so a data race here is
 * a protocol bug, not test flakiness.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/export.hpp"
#include "core/sched_context.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "pipeline/ii_search.hpp"
#include "pipeline/pipeline.hpp"
#include "support/logging.hpp"

#ifndef CS_TEST_DATA_DIR
#define CS_TEST_DATA_DIR "."
#endif

namespace cs {
namespace {

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t state = 14695981039346656037ull;
    for (unsigned char c : data) {
        state ^= c;
        state *= 1099511628211ull;
    }
    return state;
}

struct GoldenRecord
{
    int ii = 0;
    std::size_t bytes = 0;
    std::uint64_t hash = 0;
};

/** The modulo entries of tests/golden_listings.txt, keyed
 *  "kernel|machine|modulo" (same file the serial suite pins). */
const std::map<std::string, GoldenRecord> &
moduloGoldens()
{
    static const std::map<std::string, GoldenRecord> table = [] {
        std::map<std::string, GoldenRecord> out;
        std::ifstream in(std::string(CS_TEST_DATA_DIR) +
                         "/golden_listings.txt");
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::istringstream fields(line);
            std::string key;
            GoldenRecord record;
            fields >> key >> record.ii >> record.bytes >> std::hex >>
                record.hash >> std::dec;
            if (!key.empty() &&
                key.size() > 7 &&
                key.compare(key.size() - 7, 7, "|modulo") == 0)
                out[key] = record;
        }
        return out;
    }();
    return table;
}

Machine
machineByName(const std::string &name)
{
    if (name == "central")
        return makeCentral();
    if (name == "clustered2")
        return makeClustered({}, 2);
    if (name == "clustered4")
        return makeClustered({}, 4);
    CS_ASSERT(name == "distributed", "unknown machine ", name);
    return makeDistributed();
}

std::string
goldenKey(const std::string &kernelName, const std::string &machineName)
{
    std::string key = kernelName;
    for (char &c : key) {
        if (c == ' ')
            c = '_';
    }
    return key + "|" + machineName + "|modulo";
}

/**
 * Parametrized by machine so the TSan job can run the cheap machines
 * without paying for the multi-second clustered4/distributed sweeps.
 */
class ModuloParallelGolden
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ModuloParallelGolden, MatchesSerialGoldens)
{
    setVerboseLogging(false);
    const std::string machineName = GetParam();
    Machine machine = machineByName(machineName);
    ASSERT_FALSE(moduloGoldens().empty())
        << "golden_listings.txt has no pipelined entries";

    ThreadPool pool(2);
    IiSearchConfig config;
    config.pool = &pool;
    config.maxInFlight = 3;

    for (const KernelSpec &spec : allKernels()) {
        Kernel kernel = spec.build();
        PipelineResult result = schedulePipelinedParallel(
            kernel, BlockId(0), machine, {}, 64, config);
        ASSERT_TRUE(result.success)
            << spec.name << " on " << machineName;

        auto it = moduloGoldens().find(
            goldenKey(spec.name, machineName));
        ASSERT_NE(it, moduloGoldens().end())
            << "no pipelined golden for " << spec.name << " on "
            << machineName;

        EXPECT_EQ(result.ii, it->second.ii)
            << spec.name << " on " << machineName
            << ": parallel search picked a different II";
        std::string listing = exportListing(
            result.inner.kernel, machine, result.inner.schedule);
        EXPECT_EQ(listing.size(), it->second.bytes);
        EXPECT_EQ(fnv1a(listing), it->second.hash)
            << spec.name << " on " << machineName
            << ": parallel listing differs byte-for-byte from serial";

        // Accounting sanity (exact reconciliation against a serial
        // run is covered below on the cheap machines).
        EXPECT_GE(result.attempts, 1);
        EXPECT_GE(result.attemptsWasted, 0);
        EXPECT_GE(result.attempts - result.attemptsWasted, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(AllMachines, ModuloParallelGolden,
                         ::testing::Values("central", "clustered2",
                                           "clustered4",
                                           "distributed"),
                         [](const auto &info) { return info.param; });

TEST(ModuloParallel, NullPoolIsTheSerialSweep)
{
    setVerboseLogging(false);
    Machine machine = makeClustered({}, 2);
    Kernel kernel = allKernels().front().build();

    PipelineResult serial =
        schedulePipelined(kernel, BlockId(0), machine);
    PipelineResult fallback = schedulePipelinedParallel(
        kernel, BlockId(0), machine, {}, 64, IiSearchConfig{});

    ASSERT_EQ(serial.success, fallback.success);
    EXPECT_EQ(serial.ii, fallback.ii);
    EXPECT_EQ(serial.attempts, fallback.attempts);
    EXPECT_EQ(fallback.attemptsWasted, 0);
    EXPECT_EQ(exportListing(serial.inner.kernel, machine,
                            serial.inner.schedule),
              exportListing(fallback.inner.kernel, machine,
                            fallback.inner.schedule));
}

TEST(ModuloParallel, AttemptAccountingReconcilesWithSerial)
{
    setVerboseLogging(false);
    ThreadPool pool(2);
    IiSearchConfig config;
    config.pool = &pool;
    config.maxInFlight = 4;

    for (const char *machineName : {"central", "clustered2"}) {
        Machine machine = machineByName(machineName);
        for (const KernelSpec &spec : allKernels()) {
            Kernel kernel = spec.build();
            PipelineResult serial =
                schedulePipelined(kernel, BlockId(0), machine);
            PipelineResult parallel = schedulePipelinedParallel(
                kernel, BlockId(0), machine, {}, 64, config);

            ASSERT_EQ(serial.success, parallel.success)
                << spec.name << " on " << machineName;
            EXPECT_EQ(serial.ii, parallel.ii);
            EXPECT_EQ(serial.resMii, parallel.resMii);
            EXPECT_EQ(serial.recMii, parallel.recMii);
            // The serial sweep stops at the winner; the speculative
            // search may launch past it, but every extra launch is
            // accounted as wasted.
            EXPECT_EQ(serial.attempts,
                      parallel.attempts - parallel.attemptsWasted)
                << spec.name << " on " << machineName;
            EXPECT_EQ(serial.attemptsWasted, 0);

            // The winner's stats carry the search counters, agreeing
            // with the result fields.
            const CounterSet &stats = parallel.inner.stats;
            EXPECT_EQ(stats.get("ii_search.attempts_launched"),
                      static_cast<std::uint64_t>(parallel.attempts));
            EXPECT_EQ(stats.get("ii_search.attempts_wasted"),
                      static_cast<std::uint64_t>(
                          parallel.attemptsWasted));
            // Cancelled attempts are those wasted ones that were
            // aborted mid-run (the rest finished before the winner).
            EXPECT_LE(stats.get("ii_search.attempts_cancelled"),
                      static_cast<std::uint64_t>(
                          parallel.attemptsWasted));
        }
    }
}

TEST(ModuloParallel, PreArmedAbortCancelsWithoutScheduling)
{
    setVerboseLogging(false);
    Machine machine = makeCentral();
    Kernel kernel = allKernels().front().build();
    BlockSchedulingContext context(kernel, BlockId(0), machine);

    std::atomic<bool> abort{true};
    BlockScheduler scheduler(context, SchedulerOptions{},
                             context.mii());
    scheduler.setAbortFlag(&abort);
    ScheduleResult result = scheduler.run();

    EXPECT_FALSE(result.success);
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(result.failure, "cancelled");
    // Cancellation short-circuits before any operation lands.
    EXPECT_EQ(result.stats.get("ops_scheduled"), 0u);
}

TEST(ModuloParallel, UnarmedFlagLeavesRunUntouched)
{
    setVerboseLogging(false);
    Machine machine = makeClustered({}, 2);
    Kernel kernel = allKernels().front().build();
    BlockSchedulingContext context(kernel, BlockId(0), machine);

    PipelineResult reference =
        schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(reference.success);

    std::atomic<bool> abort{false};
    BlockScheduler scheduler(context, SchedulerOptions{},
                             reference.ii);
    scheduler.setAbortFlag(&abort);
    ScheduleResult armed = scheduler.run();

    ASSERT_TRUE(armed.success);
    EXPECT_FALSE(armed.cancelled);
    EXPECT_EQ(exportListing(armed.kernel, machine, armed.schedule),
              exportListing(reference.inner.kernel, machine,
                            reference.inner.schedule));
}

TEST(ModuloParallel, PipelineRoutesPipelinedJobsThroughParallelSearch)
{
    setVerboseLogging(false);
    Machine machine = makeClustered({}, 2);

    std::vector<ScheduleJob> jobs;
    for (const KernelSpec &spec : allKernels()) {
        ScheduleJob job;
        job.label = spec.name;
        job.kernel = spec.build();
        job.block = BlockId(0);
        job.machine = &machine;
        job.pipelined = true;
        jobs.push_back(std::move(job));
    }

    PipelineConfig serialConfig;
    serialConfig.numThreads = 2;
    SchedulingPipeline serialPipeline(serialConfig);
    std::vector<JobResult> serial = serialPipeline.run(jobs);

    PipelineConfig parallelConfig;
    parallelConfig.numThreads = 2;
    parallelConfig.iiSearchWorkers = 2;
    SchedulingPipeline parallelPipeline(parallelConfig);
    std::vector<JobResult> parallel = parallelPipeline.run(jobs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(parallel[i].success) << jobs[i].label;
        EXPECT_EQ(serial[i].ii, parallel[i].ii) << jobs[i].label;
        EXPECT_EQ(serial[i].listing, parallel[i].listing)
            << jobs[i].label;
        EXPECT_EQ(serial[i].iiAttempts,
                  parallel[i].iiAttempts - parallel[i].iiAttemptsWasted)
            << jobs[i].label;
        EXPECT_EQ(serial[i].iiAttemptsWasted, 0);
    }

    // The cache entry records the achieved II and attempt accounting:
    // a repeat submission replays the populating run's numbers.
    std::vector<JobResult> warm = parallelPipeline.run(jobs);
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].cacheHit) << jobs[i].label;
        EXPECT_EQ(warm[i].ii, parallel[i].ii);
        EXPECT_EQ(warm[i].iiAttempts, parallel[i].iiAttempts);
        EXPECT_EQ(warm[i].iiAttemptsWasted,
                  parallel[i].iiAttemptsWasted);
    }

    // The merged pipeline counters expose the search's work.
    CounterSet stats = parallelPipeline.statsSnapshot();
    std::uint64_t launched = 0;
    for (const JobResult &r : parallel)
        launched += static_cast<std::uint64_t>(r.iiAttempts);
    EXPECT_EQ(stats.get("ii_search.attempts_launched"), launched);
}

} // namespace
} // namespace cs
