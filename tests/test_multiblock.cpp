/**
 * @file
 * Multi-block kernels: the paper's kernels are "a short preamble
 * followed by a single software-pipelined loop". These tests build
 * two-block kernels and check that cross-block values are treated as
 * live-ins on the consuming side (read stub only, no copies charged
 * to the loop), and that each block schedules and validates on the
 * shared-interconnect machines.
 */

#include <gtest/gtest.h>

#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "machine/builders.hpp"

namespace cs {
namespace {

/** Preamble computes a scale factor; the loop applies it. */
Kernel
preambleAndLoop()
{
    KernelBuilder b("two-block");
    b.block("preamble");
    Val base = b.load(50, 0, "base");
    Val scale = b.iadd(base, 3, "scale");
    (void)scale;
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    Val y = b.imul(x, scale, "y"); // cross-block use
    b.store(200, y, 1);
    return b.take();
}

TEST(MultiBlock, VerifierAcceptsCrossBlockUses)
{
    Kernel kernel = preambleAndLoop();
    EXPECT_TRUE(verifyKernel(kernel).empty());
    EXPECT_EQ(kernel.numBlocks(), 2u);
}

TEST(MultiBlock, BothBlocksScheduleOnDistributed)
{
    Kernel kernel = preambleAndLoop();
    Machine machine = makeDistributed();

    ScheduleResult preamble =
        scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(preamble.success) << preamble.failure;
    EXPECT_TRUE(validateSchedule(preamble.kernel, machine,
                                 preamble.schedule)
                    .empty());

    ScheduleResult loop = scheduleBlock(kernel, BlockId(1), machine);
    ASSERT_TRUE(loop.success) << loop.failure;
    auto problems =
        validateSchedule(loop.kernel, machine, loop.schedule);
    for (const auto &p : problems)
        ADD_FAILURE() << p;
}

TEST(MultiBlock, CrossBlockOperandIsLiveInRoute)
{
    Kernel kernel = preambleAndLoop();
    Machine machine = makeDistributed();
    ScheduleResult loop = scheduleBlock(kernel, BlockId(1), machine);
    ASSERT_TRUE(loop.success);

    // The route feeding the multiply's scale operand has no writer.
    bool found_live_in = false;
    for (const RouteRecord &route : loop.schedule.routes()) {
        const Operation &reader =
            loop.kernel.operation(route.reader);
        if (reader.opcode == Opcode::IMul && route.slot == 1) {
            EXPECT_FALSE(route.writer.valid());
            EXPECT_FALSE(route.writeStub.has_value());
            found_live_in = true;
        }
    }
    EXPECT_TRUE(found_live_in);
    // Live-ins never force copies in the loop.
    EXPECT_EQ(loop.kernel.numOperations(),
              loop.kernel.numOriginalOperations());
}

TEST(MultiBlock, LoopPipelinesWithCrossBlockLiveIn)
{
    Kernel kernel = preambleAndLoop();
    Machine machine = makeDistributed();
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(1), machine);
    ASSERT_TRUE(pipe.success) << pipe.inner.failure;
    auto problems = validateSchedule(pipe.inner.kernel, machine,
                                     pipe.inner.schedule);
    for (const auto &p : problems)
        ADD_FAILURE() << p;
    // II is bound by the single-loop resources only: one load, one
    // multiply, one store per iteration pipelines at II=1.
    EXPECT_EQ(pipe.ii, 1);
}

TEST(MultiBlock, PreambleLengthIsReasonable)
{
    Kernel kernel = preambleAndLoop();
    Machine machine = makeCentral();
    ScheduleResult preamble =
        scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(preamble.success);
    // load (2) then iadd (1): length 3.
    EXPECT_EQ(preamble.schedule.length(preamble.kernel, machine), 3);
}

} // namespace
} // namespace cs
