/**
 * @file
 * Persistent schedule-cache suite: restart survival (disk-tier hits
 * after reopening the shard directory), crash safety (torn tails and
 * corrupt records degrade to truncation or a miss, never a crash),
 * duplicate-key last-wins semantics, the shared cache-counter JSON
 * emitters, and round-trip + fuzz coverage of the JobResult codec the
 * shard records are built from.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "pipeline/persistent_cache.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/result_io.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"

namespace cs {
namespace {

namespace fs = std::filesystem;

/** Fresh empty shard directory under the test's temp root. */
std::string
freshCacheDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** A real (small) schedule result to store: DCT on central. */
const JobResult &
sampleResult()
{
    static const JobResult result = [] {
        setVerboseLogging(false);
        static Machine machine = makeCentral();
        ScheduleJob job;
        job.label = "sample";
        job.kernel = kernelByName("DCT").build();
        job.block = BlockId(0);
        job.machine = &machine;
        job.pipelined = false;
        JobResult r = runScheduleJob(job);
        CS_ASSERT(r.success, "sample job failed");
        return r;
    }();
    return result;
}

/** A second, distinct result (different listing) for last-wins tests. */
const JobResult &
otherResult()
{
    static const JobResult result = [] {
        setVerboseLogging(false);
        static Machine machine = makeCentral();
        ScheduleJob job;
        job.label = "other";
        job.kernel = kernelByName("FIR-INT").build();
        job.block = BlockId(0);
        job.machine = &machine;
        job.pipelined = false;
        JobResult r = runScheduleJob(job);
        CS_ASSERT(r.success, "other job failed");
        return r;
    }();
    return result;
}

std::vector<fs::path>
shardFiles(const std::string &dir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        files.push_back(entry.path());
    return files;
}

TEST(PersistentCache, SurvivesReopenWithWarmDiskHits)
{
    std::string dir = freshCacheDir("cache_reopen");
    {
        PersistentScheduleCache cache(16, dir, 4);
        for (std::uint64_t key = 1; key <= 8; ++key)
            cache.insert(key, sampleResult());
        EXPECT_EQ(cache.diskStats().writes, 8u);
        EXPECT_EQ(cache.diskStats().writeErrors, 0u);
    } // "restart": the in-memory tier is gone, the shard files remain

    PersistentScheduleCache cache(16, dir, 4);
    EXPECT_EQ(cache.diskStats().loadedEntries, 8u);
    EXPECT_EQ(cache.diskStats().truncatedBytes, 0u);
    for (std::uint64_t key = 1; key <= 8; ++key) {
        std::optional<JobResult> hit = cache.lookup(key);
        ASSERT_TRUE(hit.has_value()) << "key " << key;
        EXPECT_EQ(hit->listing, sampleResult().listing);
        EXPECT_EQ(hit->ii, sampleResult().ii);
        EXPECT_EQ(hit->length, sampleResult().length);
    }
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.hits, 8u);
    EXPECT_EQ(disk.misses, 0u);
    EXPECT_EQ(disk.readErrors, 0u);
    // A disk hit promotes into the memory tier: the second lookup is
    // answered there and the disk counters do not move.
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_EQ(cache.diskStats().hits, 8u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PersistentCache, TornTailTruncatedOnReopen)
{
    std::string dir = freshCacheDir("cache_torn");
    {
        PersistentScheduleCache cache(16, dir, 1);
        cache.insert(1, sampleResult());
        cache.insert(2, sampleResult());
    }
    std::vector<fs::path> files = shardFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    std::uintmax_t validBytes = fs::file_size(files[0]);

    // Simulate a crash mid-append: a record header with a payload that
    // never made it to disk.
    {
        std::ofstream out(files[0],
                          std::ios::binary | std::ios::app);
        const std::uint8_t torn[] = {0x43, 0x52, 0x53, 0x43, // magic
                                     0x07, 0x00, 0x00, 0x00, // key...
                                     0x00, 0x00, 0x00, 0x00,
                                     0xff, 0x00, 0x00, 0x00}; // length
        out.write(reinterpret_cast<const char *>(torn), sizeof torn);
    }

    PersistentScheduleCache cache(16, dir, 1);
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.loadedEntries, 2u);
    EXPECT_EQ(disk.truncatedBytes, 16u);
    // The torn tail was cut off the file itself (self-heal), so the
    // next append starts from a clean record boundary.
    EXPECT_EQ(fs::file_size(files[0]), validBytes);
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_TRUE(cache.lookup(2).has_value());
    EXPECT_FALSE(cache.lookup(7).has_value());
}

TEST(PersistentCache, CorruptRecordDetectedOnReopen)
{
    std::string dir = freshCacheDir("cache_corrupt_open");
    {
        PersistentScheduleCache cache(16, dir, 1);
        cache.insert(1, sampleResult());
    }
    std::vector<fs::path> files = shardFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    std::uintmax_t size = fs::file_size(files[0]);
    ASSERT_GT(size, 64u);
    {
        // Flip one payload byte mid-record: the checksum no longer
        // holds, so the open scan truncates the shard there.
        std::fstream f(files[0], std::ios::binary | std::ios::in |
                                     std::ios::out);
        f.seekp(static_cast<std::streamoff>(size / 2));
        char byte = 0;
        f.seekg(static_cast<std::streamoff>(size / 2));
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        f.seekp(static_cast<std::streamoff>(size / 2));
        f.write(&byte, 1);
    }

    {
        // The footer survived (the flip hit the payload), so the O(1)
        // reopen trusts it — but the read-time checksum catches the
        // damage and the lookup degrades to a miss.
        PersistentScheduleCache cache(16, dir, 1);
        PersistentScheduleCache::DiskStats disk = cache.diskStats();
        EXPECT_EQ(disk.footerLoads, 1u);
        EXPECT_EQ(disk.loadedEntries, 1u);
        EXPECT_FALSE(cache.lookup(1).has_value());
        EXPECT_EQ(cache.diskStats().readErrors, 1u);
    }

    // A crashed daemon leaves no footer: the fallback scan finds the
    // corruption at open, truncates the shard there, and self-heals.
    ASSERT_EQ(PersistentScheduleCache::stripIndexFooters(dir), 1);
    PersistentScheduleCache cache(16, dir, 1);
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.scanLoads, 1u);
    EXPECT_EQ(disk.loadedEntries, 0u);
    EXPECT_GT(disk.truncatedBytes, 0u);
    EXPECT_FALSE(cache.lookup(1).has_value());
    // The cache stays writable after healing.
    cache.insert(2, sampleResult());
    EXPECT_EQ(cache.diskStats().writes, 1u);
    PersistentScheduleCache reopened(16, dir, 1);
    EXPECT_EQ(reopened.diskStats().loadedEntries, 1u);
    EXPECT_TRUE(reopened.lookup(2).has_value());
}

TEST(PersistentCache, CorruptionAfterOpenDegradesToMiss)
{
    std::string dir = freshCacheDir("cache_corrupt_read");
    {
        PersistentScheduleCache cache(16, dir, 1);
        cache.insert(1, sampleResult());
    }
    PersistentScheduleCache cache(16, dir, 1);
    ASSERT_EQ(cache.diskStats().loadedEntries, 1u);

    // Corrupt the record *after* the index was built: the read-time
    // checksum still catches it and the lookup degrades to a miss.
    std::vector<fs::path> files = shardFiles(dir);
    std::uintmax_t size = fs::file_size(files[0]);
    {
        std::fstream f(files[0], std::ios::binary | std::ios::in |
                                     std::ios::out);
        f.seekp(static_cast<std::streamoff>(size / 2));
        f.write("\x00", 1);
        f.seekp(static_cast<std::streamoff>(size / 2 + 1));
        f.write("\xff", 1);
    }
    std::optional<JobResult> hit = cache.lookup(1);
    if (hit.has_value()) {
        // The two overwritten bytes happened to match the original.
        SUCCEED();
        return;
    }
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.readErrors, 1u);
    EXPECT_EQ(disk.misses, 1u);
}

/** FNV-1a 64 as the shard files use it (records and footers). */
std::uint64_t
testFnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t state = 14695981039346656037ull;
    for (std::size_t i = 0; i < size; ++i) {
        state ^= data[i];
        state *= 1099511628211ull;
    }
    return state;
}

/** Raw shard-record bytes for @p key, as a crashed or foreign writer
 *  would append them (no footer maintenance). */
std::vector<std::uint8_t>
rawRecord(std::uint64_t key, const JobResult &result)
{
    std::vector<std::uint8_t> payload;
    wire::ByteWriter writer(payload);
    encodeJobResult(writer, result);
    std::vector<std::uint8_t> record;
    wire::appendU32le(record, kShardRecordMagic);
    wire::appendU64le(record, key);
    wire::appendU32le(record,
                      static_cast<std::uint32_t>(payload.size()));
    record.insert(record.end(), payload.begin(), payload.end());
    wire::appendU64le(record,
                      testFnv1a(payload.data(), payload.size()));
    return record;
}

void
appendBytes(const fs::path &file, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(file, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(PersistentCache, TornFooterFallsBackToScan)
{
    std::string dir = freshCacheDir("cache_torn_footer");
    {
        PersistentScheduleCache cache(16, dir, 1);
        for (std::uint64_t key = 1; key <= 3; ++key)
            cache.insert(key, sampleResult());
    } // clean close appends the index footer
    std::vector<fs::path> files = shardFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    std::uintmax_t sizeWithFooter = fs::file_size(files[0]);

    // A crash mid-footer-write: the tail (and its magic) never landed.
    fs::resize_file(files[0], sizeWithFooter - 3);

    PersistentScheduleCache cache(16, dir, 1);
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.footerLoads, 0u);
    EXPECT_EQ(disk.scanLoads, 1u);
    EXPECT_EQ(disk.loadedEntries, 3u);
    EXPECT_GT(disk.truncatedBytes, 0u); // the torn footer was cut off
    for (std::uint64_t key = 1; key <= 3; ++key) {
        std::optional<JobResult> hit = cache.lookup(key);
        ASSERT_TRUE(hit.has_value()) << "key " << key;
        EXPECT_EQ(hit->listing, sampleResult().listing);
    }
    EXPECT_EQ(cache.diskStats().readErrors, 0u);
}

TEST(PersistentCache, FlippedFooterChecksumFallsBackToScan)
{
    std::string dir = freshCacheDir("cache_footer_checksum");
    {
        PersistentScheduleCache cache(16, dir, 1);
        cache.insert(1, sampleResult());
        cache.insert(2, otherResult());
    }
    std::vector<fs::path> files = shardFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    std::uintmax_t size = fs::file_size(files[0]);
    {
        // Flip one bit of the footer checksum (8 bytes before the tail
        // magic): geometry and magics still hold, the checksum doesn't.
        std::fstream f(files[0], std::ios::binary | std::ios::in |
                                     std::ios::out);
        f.seekg(static_cast<std::streamoff>(size - 12));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x01);
        f.seekp(static_cast<std::streamoff>(size - 12));
        f.write(&byte, 1);
    }

    {
        PersistentScheduleCache cache(16, dir, 1);
        PersistentScheduleCache::DiskStats disk = cache.diskStats();
        EXPECT_EQ(disk.footerLoads, 0u);
        EXPECT_EQ(disk.scanLoads, 1u);
        EXPECT_EQ(disk.loadedEntries, 2u);
        EXPECT_GT(disk.truncatedBytes, 0u);
        std::optional<JobResult> one = cache.lookup(1);
        std::optional<JobResult> two = cache.lookup(2);
        ASSERT_TRUE(one.has_value());
        ASSERT_TRUE(two.has_value());
        EXPECT_EQ(one->listing, sampleResult().listing);
        EXPECT_EQ(two->listing, otherResult().listing);
    } // clean close writes a fresh, valid footer

    PersistentScheduleCache reopened(16, dir, 1);
    EXPECT_EQ(reopened.diskStats().footerLoads, 1u);
    EXPECT_EQ(reopened.diskStats().loadedEntries, 2u);
}

TEST(PersistentCache, FooterEntryPastDataEndFallsBackToScan)
{
    std::string dir = freshCacheDir("cache_footer_bounds");
    {
        PersistentScheduleCache cache(16, dir, 1);
        cache.insert(1, sampleResult());
        cache.insert(2, sampleResult());
    }
    std::vector<fs::path> files = shardFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    std::uintmax_t size = fs::file_size(files[0]);

    // A correctly checksummed footer whose entry points past the
    // records region: every field validates except the entry bounds,
    // so trusting it blindly would index into nothing. The open must
    // reject it and fall back to the scan.
    std::vector<std::uint8_t> fake;
    wire::appendU32le(fake, kShardFooterMagic);
    wire::appendU64le(fake, 1); // one entry
    wire::appendU64le(fake, 99);
    wire::appendU64le(fake, size + 4096); // offset past EOF
    wire::appendU32le(fake, 16);
    wire::appendU64le(fake, size); // dataEnd: this footer's position
    wire::appendU64le(fake, testFnv1a(fake.data(), fake.size()));
    wire::appendU32le(fake, kShardFooterTailMagic);
    appendBytes(files[0], fake);

    PersistentScheduleCache cache(16, dir, 1);
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.footerLoads, 0u);
    EXPECT_EQ(disk.scanLoads, 1u);
    EXPECT_EQ(disk.loadedEntries, 2u);
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_TRUE(cache.lookup(2).has_value());
    EXPECT_FALSE(cache.lookup(99).has_value());
    EXPECT_EQ(cache.diskStats().readErrors, 0u);
}

TEST(PersistentCache, AppendAfterCleanCloseKeepsEveryRecord)
{
    std::string dir = freshCacheDir("cache_append_after_close");
    {
        PersistentScheduleCache cache(16, dir, 1);
        cache.insert(1, sampleResult());
    } // [rec1][footer]

    {
        // Reopen warm (O(1) footer load) and append: the stale footer
        // is truncated before the new record lands, so the records
        // region stays contiguous.
        PersistentScheduleCache cache(16, dir, 1);
        EXPECT_EQ(cache.diskStats().footerLoads, 1u);
        cache.insert(2, sampleResult());
        EXPECT_EQ(cache.diskStats().writes, 1u);
    } // [rec1][rec2][footer]

    {
        PersistentScheduleCache cache(16, dir, 1);
        EXPECT_EQ(cache.diskStats().footerLoads, 1u);
        EXPECT_EQ(cache.diskStats().loadedEntries, 2u);
        EXPECT_TRUE(cache.lookup(1).has_value());
        EXPECT_TRUE(cache.lookup(2).has_value());
    }

    // A crashed foreign writer that appended past the footer without
    // truncating it: the scan must skip the (valid, in-place) stale
    // footer and keep both the old and the appended records.
    std::vector<fs::path> files = shardFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    appendBytes(files[0], rawRecord(3, otherResult()));

    PersistentScheduleCache cache(16, dir, 1);
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.footerLoads, 0u);
    EXPECT_EQ(disk.scanLoads, 1u);
    EXPECT_EQ(disk.loadedEntries, 3u);
    EXPECT_EQ(disk.truncatedBytes, 0u); // nothing was lost
    std::optional<JobResult> one = cache.lookup(1);
    std::optional<JobResult> three = cache.lookup(3);
    ASSERT_TRUE(one.has_value());
    ASSERT_TRUE(cache.lookup(2).has_value());
    ASSERT_TRUE(three.has_value());
    EXPECT_EQ(one->listing, sampleResult().listing);
    EXPECT_EQ(three->listing, otherResult().listing);
}

TEST(PersistentCache, StripIndexFootersForcesScanThenHeals)
{
    std::string dir = freshCacheDir("cache_strip");
    {
        PersistentScheduleCache cache(16, dir, 2);
        for (std::uint64_t key = 1; key <= 3; ++key)
            cache.insert(key, sampleResult());
    }
    // Both shards carry a footer; stripping emulates a crash that
    // never reached the clean close.
    EXPECT_EQ(PersistentScheduleCache::stripIndexFooters(dir), 2);
    EXPECT_EQ(PersistentScheduleCache::stripIndexFooters(dir), 0);

    {
        PersistentScheduleCache cache(16, dir, 2);
        PersistentScheduleCache::DiskStats disk = cache.diskStats();
        EXPECT_EQ(disk.footerLoads, 0u);
        EXPECT_EQ(disk.scanLoads, 2u);
        EXPECT_EQ(disk.loadedEntries, 3u);
        EXPECT_EQ(disk.truncatedBytes, 0u);
        for (std::uint64_t key = 1; key <= 3; ++key) {
            std::optional<JobResult> hit = cache.lookup(key);
            ASSERT_TRUE(hit.has_value()) << "key " << key;
            EXPECT_EQ(hit->listing, sampleResult().listing);
        }
    } // the clean close restores both footers

    PersistentScheduleCache cache(16, dir, 2);
    EXPECT_EQ(cache.diskStats().footerLoads, 2u);
    EXPECT_EQ(cache.diskStats().scanLoads, 0u);
    EXPECT_EQ(cache.diskStats().loadedEntries, 3u);
}

TEST(PersistentCache, DuplicateKeysKeepLastRecord)
{
    std::string dir = freshCacheDir("cache_dup");
    {
        PersistentScheduleCache cache(16, dir, 2);
        cache.insert(5, sampleResult());
        cache.insert(5, otherResult()); // re-insertion appends
    }
    PersistentScheduleCache cache(16, dir, 2);
    std::optional<JobResult> hit = cache.lookup(5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->listing, otherResult().listing);
}

TEST(PersistentCache, MemoryOnlyWhenDirectoryEmpty)
{
    PersistentScheduleCache cache(4, "");
    EXPECT_FALSE(cache.persistent());
    cache.insert(1, sampleResult());
    EXPECT_TRUE(cache.lookup(1).has_value());
    PersistentScheduleCache::DiskStats disk = cache.diskStats();
    EXPECT_EQ(disk.writes, 0u);
    EXPECT_EQ(disk.hits + disk.misses, 0u);
}

TEST(PersistentCache, ZeroCapacityDisablesCaching)
{
    PersistentScheduleCache cache(0, "");
    cache.insert(1, sampleResult());
    EXPECT_FALSE(cache.lookup(1).has_value());
}

TEST(PersistentCache, WarmRestartServesBatchFromDisk)
{
    // The serving acceptance bar: restart with a populated shard
    // directory and replay the batch — at least 90% (here: all) of
    // the lookups must be answered by the disk tier, byte-identically.
    setVerboseLogging(false);
    std::string dir = freshCacheDir("cache_pipeline");
    Machine central = makeCentral();
    const char *names[] = {"DCT", "FFT-U4", "FIR-INT",
                           "Block Warp-U2", "Triangle Transform"};
    std::vector<ScheduleJob> jobs;
    for (const char *name : names) {
        ScheduleJob job;
        job.label = name;
        job.kernel = kernelByName(name).build();
        job.block = BlockId(0);
        job.machine = &central;
        job.pipelined = false;
        jobs.push_back(std::move(job));
    }

    std::vector<JobResult> cold;
    {
        SchedulingPipeline pipeline({.numThreads = 2,
                                     .cacheCapacity = 64,
                                     .cacheDirectory = dir,
                                     .cacheShards = 4});
        cold = pipeline.run(jobs);
        for (const JobResult &result : cold)
            ASSERT_TRUE(result.success);
        EXPECT_EQ(pipeline.cache().diskStats().writes, jobs.size());
    } // restart

    SchedulingPipeline pipeline({.numThreads = 2,
                                 .cacheCapacity = 64,
                                 .cacheDirectory = dir,
                                 .cacheShards = 4});
    EXPECT_EQ(pipeline.cache().diskStats().loadedEntries, jobs.size());
    std::vector<JobResult> warm = pipeline.run(jobs);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        EXPECT_TRUE(warm[i].cacheHit);
        EXPECT_EQ(warm[i].listing, cold[i].listing);
        EXPECT_EQ(warm[i].length, cold[i].length);
        EXPECT_EQ(warm[i].copiesInserted, cold[i].copiesInserted);
    }
    PersistentScheduleCache::DiskStats disk =
        pipeline.cache().diskStats();
    std::uint64_t lookups = disk.hits + disk.misses;
    ASSERT_EQ(lookups, jobs.size());
    EXPECT_GE(static_cast<double>(disk.hits) /
                  static_cast<double>(lookups),
              0.9);
    EXPECT_EQ(disk.hits, jobs.size());
    EXPECT_EQ(disk.readErrors, 0u);
}

TEST(CacheCounterEmitters, SharedWritersMatchHandCounts)
{
    ScheduleCache::Stats memory;
    memory.hits = 3;
    memory.misses = 2;
    memory.evictions = 1;
    memory.entries = 4;
    memory.capacity = 16;
    CounterSet memorySet = toCounterSet(memory);
    std::ostringstream memoryJson;
    writeCounterObject(memoryJson, memorySet, kMemoryCacheCounters);
    // writeCounterObject emits sorted key order everywhere.
    EXPECT_EQ(memoryJson.str(),
              "{\"capacity\":16,\"entries\":4,\"evictions\":1,"
              "\"hits\":3,\"misses\":2}");

    PersistentScheduleCache::DiskStats disk;
    disk.loadedEntries = 7;
    disk.truncatedBytes = 24;
    disk.footerLoads = 3;
    disk.scanLoads = 1;
    disk.ownedShards = 4;
    disk.hits = 5;
    disk.misses = 1;
    disk.readErrors = 1;
    disk.writes = 9;
    disk.writeErrors = 0;
    disk.droppedReadOnly = 2;
    disk.remaps = 6;
    disk.ownershipPromotions = 1;
    CounterSet diskSet = toCounterSet(disk);
    std::ostringstream diskJson;
    writeCounterObject(diskJson, diskSet, kDiskCacheCounters);
    EXPECT_EQ(diskJson.str(),
              "{\"dropped_read_only\":2,\"footer_loads\":3,"
              "\"hits\":5,\"loaded_entries\":7,\"misses\":1,"
              "\"owned_shards\":4,\"ownership_promotions\":1,"
              "\"read_errors\":1,\"remaps\":6,\"scan_loads\":1,"
              "\"truncated_bytes\":24,\"write_errors\":0,"
              "\"writes\":9}");
}

TEST(ResultIo, RoundTripPreservesEveryField)
{
    const JobResult &original = sampleResult();
    std::vector<std::uint8_t> bytes;
    wire::ByteWriter writer(bytes);
    encodeJobResult(writer, original);

    wire::ByteReader reader(bytes);
    JobResult decoded;
    ASSERT_TRUE(decodeJobResult(reader, &decoded)) << reader.error();
    EXPECT_TRUE(reader.atEnd());
    EXPECT_EQ(decoded.success, original.success);
    EXPECT_EQ(decoded.ii, original.ii);
    EXPECT_EQ(decoded.length, original.length);
    EXPECT_EQ(decoded.copiesInserted, original.copiesInserted);
    EXPECT_EQ(decoded.listing, original.listing);
    EXPECT_EQ(decoded.verifierErrors, original.verifierErrors);

    // Re-encoding the decoded result reproduces the bytes: the codec
    // is a bijection on valid records.
    std::vector<std::uint8_t> again;
    wire::ByteWriter rewriter(again);
    encodeJobResult(rewriter, decoded);
    EXPECT_EQ(again, bytes);
}

TEST(ResultIo, TruncatedAndFlippedRecordsNeverCrash)
{
    std::vector<std::uint8_t> bytes;
    wire::ByteWriter writer(bytes);
    encodeJobResult(writer, sampleResult());

    for (std::size_t length = 0; length < bytes.size();
         length += 1 + bytes.size() / 256) {
        std::vector<std::uint8_t> truncated(
            bytes.begin(), bytes.begin() + static_cast<long>(length));
        wire::ByteReader reader(truncated);
        JobResult out;
        EXPECT_FALSE(decodeJobResult(reader, &out));
    }

    std::mt19937 rng(0xD15C);
    std::uniform_int_distribution<std::size_t> pos(0, bytes.size() - 1);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int round = 0; round < 400; ++round) {
        std::vector<std::uint8_t> mutated = bytes;
        int edits = 1 + round % 4;
        for (int e = 0; e < edits; ++e)
            mutated[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
        wire::ByteReader reader(mutated);
        JobResult out;
        (void)decodeJobResult(reader, &out); // must not crash
    }
}

} // namespace
} // namespace cs
