/**
 * @file
 * Pipeline-layer tests: concurrent-vs-serial schedule determinism on
 * Table-1 kernels, content-addressed cache semantics (hit on repeat,
 * miss after an option change, LRU eviction, repeat-batch hit rate),
 * graceful thread-pool shutdown with work still queued, and the
 * thread-safety of the shared CounterSet.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/schedule_cache.hpp"
#include "pipeline/thread_pool.hpp"
#include "support/stats.hpp"

namespace cs {
namespace {

/**
 * A fast mixed batch: five Table-1 kernels (the quick ones — Sort and
 * Merge take seconds each and add nothing to a determinism check) on
 * two of the evaluation machines, plain block schedules.
 */
std::vector<ScheduleJob>
tableOneBatch(const Machine &central, const Machine &distributed)
{
    const char *names[] = {"DCT", "FFT-U4", "FIR-INT", "Block Warp-U2",
                           "Triangle Transform"};
    const std::pair<const char *, const Machine *> machines[] = {
        {"central", &central}, {"distributed", &distributed}};
    std::vector<ScheduleJob> jobs;
    for (const auto &[machineName, machine] : machines) {
        for (const char *name : names) {
            const KernelSpec &spec = kernelByName(name);
            ScheduleJob job;
            job.label = std::string(name) + "@" + machineName;
            job.kernel = spec.build();
            job.block = BlockId(0);
            job.machine = machine;
            job.pipelined = false;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(Pipeline, ConcurrentMatchesSerialByteForByte)
{
    Machine central = makeCentral();
    Machine distributed = makeDistributed();
    std::vector<ScheduleJob> jobs = tableOneBatch(central, distributed);
    ASSERT_GE(jobs.size(), 3u);

    SchedulingPipeline serial({.numThreads = 1, .cacheCapacity = 0});
    SchedulingPipeline concurrent({.numThreads = 4, .cacheCapacity = 0});

    std::vector<JobResult> serialResults = serial.run(jobs);
    std::vector<JobResult> concurrentResults = concurrent.run(jobs);

    ASSERT_EQ(serialResults.size(), concurrentResults.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        ASSERT_TRUE(serialResults[i].success);
        ASSERT_TRUE(concurrentResults[i].success);
        EXPECT_TRUE(serialResults[i].verifierErrors.empty());
        EXPECT_FALSE(serialResults[i].listing.empty());
        // Byte-identical canonical listings: placements, units, and
        // routes all match exactly.
        EXPECT_EQ(serialResults[i].listing,
                  concurrentResults[i].listing);
        EXPECT_EQ(serialResults[i].length, concurrentResults[i].length);
        EXPECT_EQ(serialResults[i].copiesInserted,
                  concurrentResults[i].copiesInserted);
    }

    // The aggregated scheduler counters are order-independent sums, so
    // they must agree too.
    EXPECT_EQ(serial.statsSnapshot().get("ops_scheduled"),
              concurrent.statsSnapshot().get("ops_scheduled"));
}

TEST(Pipeline, PipelinedJobDeterminism)
{
    // One modulo-scheduled job through both pool widths.
    Machine central = makeCentral();
    const KernelSpec &spec = kernelByName("FFT");
    ScheduleJob job;
    job.label = "FFT@central";
    job.kernel = spec.build();
    job.block = BlockId(0);
    job.machine = &central;
    job.pipelined = true;
    std::vector<ScheduleJob> jobs(3, job);

    SchedulingPipeline serial({.numThreads = 1, .cacheCapacity = 0});
    SchedulingPipeline concurrent({.numThreads = 4, .cacheCapacity = 0});
    std::vector<JobResult> a = serial.run(jobs);
    std::vector<JobResult> b = concurrent.run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(a[i].success);
        ASSERT_TRUE(b[i].success);
        EXPECT_EQ(a[i].ii, b[i].ii);
        EXPECT_EQ(a[i].listing, b[i].listing);
    }
}

TEST(Pipeline, CacheHitOnRepeatMissAfterOptionChange)
{
    Machine central = makeCentral();
    const KernelSpec &spec = kernelByName("DCT");
    ScheduleJob job;
    job.label = "DCT@central";
    job.kernel = spec.build();
    job.block = BlockId(0);
    job.machine = &central;
    job.pipelined = false;

    SchedulingPipeline pipeline({.numThreads = 2, .cacheCapacity = 64});

    std::vector<JobResult> first = pipeline.run({job});
    ASSERT_TRUE(first[0].success);
    EXPECT_FALSE(first[0].cacheHit);

    // Identical job: served from the cache, identical schedule.
    std::vector<JobResult> second = pipeline.run({job});
    EXPECT_TRUE(second[0].cacheHit);
    EXPECT_EQ(first[0].listing, second[0].listing);

    // Any option change re-keys the job.
    ScheduleJob changed = job;
    changed.options.permutationBudget += 1;
    std::vector<JobResult> third = pipeline.run({changed});
    EXPECT_FALSE(third[0].cacheHit);

    ScheduleCache::Stats stats = pipeline.cache().stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
}

TEST(Pipeline, RepeatedBatchHitRateAtLeastNinetyPercent)
{
    Machine central = makeCentral();
    Machine distributed = makeDistributed();
    std::vector<ScheduleJob> jobs = tableOneBatch(central, distributed);

    SchedulingPipeline pipeline({.numThreads = 4, .cacheCapacity = 256});
    pipeline.run(jobs);
    ScheduleCache::Stats cold = pipeline.cache().stats();

    pipeline.run(jobs); // same batch again, same process
    ScheduleCache::Stats warm = pipeline.cache().stats();

    std::uint64_t hits = warm.hits - cold.hits;
    std::uint64_t lookups = (warm.hits + warm.misses) -
                            (cold.hits + cold.misses);
    ASSERT_EQ(lookups, jobs.size());
    // The acceptance bar is >= 90%; identical jobs must in fact all hit.
    EXPECT_GE(static_cast<double>(hits) /
                  static_cast<double>(lookups),
              0.9);
    EXPECT_EQ(hits, jobs.size());
}

TEST(ScheduleCache, LruEvictionBoundsEntries)
{
    ScheduleCache cache(2);
    JobResult dummy;
    cache.insert(1, dummy);
    cache.insert(2, dummy);
    EXPECT_TRUE(cache.lookup(1).has_value()); // 1 becomes most-recent
    cache.insert(3, dummy);                   // evicts 2
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_FALSE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(3).has_value());

    ScheduleCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(Pipeline, ContentKeyIgnoresDebugNames)
{
    // Two dataflow-identical kernels whose labels differ key equal;
    // the machine and options perturbations key differently.
    Machine central = makeCentral();
    Machine distributed = makeDistributed();
    const KernelSpec &spec = kernelByName("FIR-INT");

    ScheduleJob a;
    a.label = "first";
    a.kernel = spec.build();
    a.block = BlockId(0);
    a.machine = &central;

    ScheduleJob b = a;
    b.label = "second (same content)";
    EXPECT_EQ(scheduleJobKey(a), scheduleJobKey(b));

    b.machine = &distributed;
    EXPECT_NE(scheduleJobKey(a), scheduleJobKey(b));

    b = a;
    b.options.maxDelay += 1;
    EXPECT_NE(scheduleJobKey(a), scheduleJobKey(b));

    b = a;
    b.pipelined = !a.pipelined;
    EXPECT_NE(scheduleJobKey(a), scheduleJobKey(b));
}

TEST(ThreadPool, DrainShutdownRunsEverything)
{
    std::atomic<int> ran{0};
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i)
        ASSERT_TRUE(pool.submit([&ran] { ++ran; }));
    std::size_t discarded = pool.shutdown(ThreadPool::Drain::Finish);
    EXPECT_EQ(discarded, 0u);
    EXPECT_EQ(ran.load(), 32);
    EXPECT_EQ(pool.executedCount(), 32u);
    // Post-shutdown submissions are rejected, not silently dropped.
    EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, DiscardShutdownDropsQueuedJobs)
{
    std::atomic<int> ran{0};
    ThreadPool pool(2);
    // Two slow tasks occupy both workers; the rest sit in the queue.
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            ++ran;
        }));
    }
    // Give the workers a moment to pick up the first tasks.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::size_t discarded = pool.shutdown(ThreadPool::Drain::Discard);

    EXPECT_GT(discarded, 0u);
    EXPECT_EQ(static_cast<std::size_t>(ran.load()) + discarded, 16u);
    EXPECT_EQ(pool.executedCount() + discarded, 16u);
    // Shutdown is idempotent and waitIdle() returns on a stopped pool.
    EXPECT_EQ(pool.shutdown(ThreadPool::Drain::Discard), 0u);
    pool.waitIdle();
}

TEST(ThreadPool, WaitIdleSeesQuiescentPool)
{
    std::atomic<int> ran{0};
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i)
        pool.submit([&ran] { ++ran; });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 64);
}

TEST(CounterSet, ConcurrentBumpsSumExactly)
{
    CounterSet stats;
    constexpr int kThreads = 8;
    constexpr int kBumps = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&stats] {
            for (int i = 0; i < kBumps; ++i)
                stats.bump("shared");
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(stats.get("shared"),
              static_cast<std::uint64_t>(kThreads) * kBumps);

    CounterSet merged;
    merged.merge(stats);
    merged.merge(stats);
    EXPECT_EQ(merged.snapshot().at("shared"),
              2ull * kThreads * kBumps);
}

TEST(CounterSet, ForEachVisitsEveryCounter)
{
    CounterSet stats;
    stats.bump("a", 1);
    stats.bump("b", 2);
    stats.bump("c", 3);
    std::map<std::string, std::uint64_t> seen;
    stats.forEach([&seen](const std::string &name,
                          std::uint64_t value) { seen[name] = value; });
    EXPECT_EQ(seen, stats.snapshot());
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen.at("b"), 2u);
}

TEST(CounterSet, ForEachRacesWithWriters)
{
    // forEach iterates under the set's own lock, so it must be safe
    // against concurrent bumps (the TSan build pins this).
    CounterSet stats;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        int i = 0;
        do
            stats.bump("w" + std::to_string(i++ % 16));
        while (!stop.load(std::memory_order_relaxed));
    });
    for (int round = 0; round < 200; ++round) {
        std::uint64_t total = 0;
        stats.forEach([&total](const std::string &,
                               std::uint64_t value) { total += value; });
    }
    stop.store(true);
    writer.join();
    std::uint64_t total = 0;
    stats.forEach(
        [&total](const std::string &, std::uint64_t value) {
            total += value;
        });
    EXPECT_GT(total, 0u);
}

} // namespace
} // namespace cs
