/**
 * @file
 * Property tests: randomly generated dataflow kernels scheduled on
 * every standard machine must always yield structurally legal
 * schedules that execute without route violations. This fuzzes the
 * interplay of stub permutation, retargeting, and copy insertion far
 * beyond the hand-written kernels.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "machine/builders.hpp"
#include "sim/datapath_sim.hpp"
#include "support/random.hpp"

namespace cs {
namespace {

/** Random DAG kernel: arithmetic ops over earlier results. */
Kernel
randomKernel(std::uint64_t seed, int numOps, bool carried)
{
    Rng rng(seed);
    KernelBuilder b("fuzz" + std::to_string(seed));
    b.block("loop", true);
    std::vector<Val> values;
    values.push_back(b.load(1000, 1, "in0"));
    values.push_back(b.load(2000, 1, "in1"));

    auto pick = [&]() -> Val {
        return values[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(values.size()) - 1))];
    };

    for (int i = 0; i < numOps; ++i) {
        int kind = static_cast<int>(rng.uniformInt(0, 9));
        Val a = pick();
        Val b2 = pick();
        Val out;
        switch (kind) {
          case 0: out = b.iadd(a, b2); break;
          case 1: out = b.isub(a, b2); break;
          case 2: out = b.imin(a, b2); break;
          case 3: out = b.imax(a, b2); break;
          case 4: out = b.ixor(a, b2); break;
          case 5: out = b.imul(a, b2); break;
          case 6: out = b.iand(a, b2); break;
          case 7: out = b.iadd(a, rng.uniformInt(-9, 9)); break;
          case 8:
            if (carried) {
                out = b.iadd(
                    a.at(static_cast<int>(rng.uniformInt(1, 3))),
                    b2);
            } else {
                out = b.ior(a, b2);
            }
            break;
          default: out = b.load(3000 + i, 1); break;
        }
        values.push_back(out);
    }
    // Store a couple of results so everything is observable.
    b.store(5000, values.back(), 1);
    b.store(6000, values[values.size() / 2], 1);
    return b.take();
}

class Fuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(Fuzz, PlainSchedulesAreLegalEverywhere)
{
    std::uint64_t seed = GetParam();
    Kernel kernel = randomKernel(seed, 24, false);
    ASSERT_TRUE(verifyKernel(kernel).empty());

    std::vector<Machine> machines;
    machines.push_back(makeCentral());
    machines.push_back(makeClustered({}, 2));
    machines.push_back(makeClustered({}, 4));
    machines.push_back(makeDistributed());
    machines.push_back(makeFigure5Machine());

    for (const Machine &machine : machines) {
        if (machine.name() == "figure5") {
            // The toy machine has no multiplier; skip kernels that
            // multiply.
            auto h = kernel.opcodeClassHistogram();
            if (h[static_cast<std::size_t>(OpClass::Multiply)] > 0)
                continue;
        }
        ScheduleResult result =
            scheduleBlock(kernel, BlockId(0), machine);
        ASSERT_TRUE(result.success)
            << machine.name() << ": " << result.failure;
        auto problems =
            validateSchedule(result.kernel, machine, result.schedule);
        for (const auto &p : problems)
            ADD_FAILURE() << machine.name() << ": " << p;
        MemoryImage mem;
        Rng data(seed);
        for (int i = 0; i < 16; ++i) {
            mem.storeInt(1000 + i, data.uniformInt(-50, 50));
            mem.storeInt(2000 + i, data.uniformInt(-50, 50));
        }
        SimResult sim = simulateBlock(result.kernel, machine,
                                      result.schedule, mem, 2);
        for (const auto &p : sim.problems)
            ADD_FAILURE() << machine.name() << ": sim: " << p;
    }
}

TEST_P(Fuzz, PipelinedSchedulesAreLegalEverywhere)
{
    std::uint64_t seed = GetParam() + 1000;
    Kernel kernel = randomKernel(seed, 16, true);
    ASSERT_TRUE(verifyKernel(kernel).empty());

    std::vector<Machine> machines;
    machines.push_back(makeCentral());
    machines.push_back(makeClustered({}, 4));
    machines.push_back(makeDistributed());

    for (const Machine &machine : machines) {
        PipelineResult pipe =
            schedulePipelined(kernel, BlockId(0), machine);
        ASSERT_TRUE(pipe.success)
            << machine.name() << ": " << pipe.inner.failure;
        EXPECT_GE(pipe.ii, std::max(pipe.resMii, pipe.recMii));
        auto problems = validateSchedule(pipe.inner.kernel, machine,
                                         pipe.inner.schedule);
        for (const auto &p : problems)
            ADD_FAILURE() << machine.name() << ": " << p;
        MemoryImage mem;
        Rng data(seed);
        for (int i = 0; i < 16; ++i) {
            mem.storeInt(1000 + i, data.uniformInt(-50, 50));
            mem.storeInt(2000 + i, data.uniformInt(-50, 50));
        }
        SimResult sim = simulateBlock(pipe.inner.kernel, machine,
                                      pipe.inner.schedule, mem, 4);
        for (const auto &p : sim.problems)
            ADD_FAILURE() << machine.name() << ": sim: " << p;
    }
}

TEST_P(Fuzz, PlainAndPipelinedAgreeFunctionally)
{
    // The same kernel executed via a plain schedule and a pipelined
    // schedule must produce identical memory.
    std::uint64_t seed = GetParam() + 2000;
    Kernel kernel = randomKernel(seed, 18, true);
    Machine machine = makeDistributed();

    auto run = [&](bool pipelined) {
        MemoryImage mem;
        Rng data(seed);
        for (int i = 0; i < 16; ++i) {
            mem.storeInt(1000 + i, data.uniformInt(-50, 50));
            mem.storeInt(2000 + i, data.uniformInt(-50, 50));
        }
        if (pipelined) {
            PipelineResult pipe =
                schedulePipelined(kernel, BlockId(0), machine);
            EXPECT_TRUE(pipe.success);
            return simulateBlock(pipe.inner.kernel, machine,
                                 pipe.inner.schedule, mem, 4);
        }
        ScheduleResult block =
            scheduleBlock(kernel, BlockId(0), machine);
        EXPECT_TRUE(block.success);
        return simulateBlock(block.kernel, machine, block.schedule,
                             mem, 4);
    };

    SimResult plain = run(false);
    SimResult pipelined = run(true);
    ASSERT_TRUE(plain.ok);
    ASSERT_TRUE(pipelined.ok);
    // Compare only output regions: carried operands differ by design
    // between the two modes (a plain schedule treats them as live-ins
    // reading the previous iteration's value, which matches).
    for (auto &[addr, word] : plain.memory.cells()) {
        if (addr >= 5000)
            EXPECT_TRUE(pipelined.memory.load(addr) == word)
                << "at " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(1, 13));

TEST(Determinism, SameInputsSameSchedule)
{
    Kernel kernel = randomKernel(99, 24, true);
    Machine machine = makeDistributed();
    ScheduleResult a = scheduleBlock(kernel, BlockId(0), machine);
    ScheduleResult b = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    ASSERT_EQ(a.kernel.numOperations(), b.kernel.numOperations());
    for (std::size_t i = 0; i < a.kernel.numOperations(); ++i) {
        OperationId op(static_cast<std::uint32_t>(i));
        const Placement &pa = a.schedule.placement(op);
        const Placement &pb = b.schedule.placement(op);
        EXPECT_EQ(pa.cycle, pb.cycle);
        EXPECT_EQ(pa.fu, pb.fu);
    }
    EXPECT_EQ(a.schedule.routes().size(), b.schedule.routes().size());
}

} // namespace
} // namespace cs
