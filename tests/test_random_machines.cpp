/**
 * @file
 * Property test over *architectures*: the paper claims communication
 * scheduling works for the whole class of copy-connected machines
 * (Appendix A), not just the four evaluated ones. Generate random
 * shared-interconnect machines; whenever the generator produces a
 * copy-connected one, random kernels must schedule, validate, and
 * simulate on it.
 */

#include <gtest/gtest.h>

#include "core/list_scheduler.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "machine/builder.hpp"
#include "sim/datapath_sim.hpp"
#include "support/random.hpp"

namespace cs {
namespace {

/**
 * Random machine: 3-6 units (adders, one load/store), 2-4 register
 * files, 2-4 shared result buses with random output/port wiring, and
 * random read-side wiring of each input to one file. All units copy.
 */
Machine
randomMachine(std::uint64_t seed)
{
    Rng rng(seed);
    MachineBuilder b("rand" + std::to_string(seed));

    int num_files = static_cast<int>(rng.uniformInt(2, 4));
    std::vector<RegFileId> files;
    for (int r = 0; r < num_files; ++r) {
        files.push_back(
            b.addRegFile("RF" + std::to_string(r), 32));
    }

    int num_units = static_cast<int>(rng.uniformInt(3, 6));
    std::vector<FuncUnitId> units;
    for (int u = 0; u < num_units; ++u) {
        bool is_ls = u == 0; // exactly one load/store unit
        units.push_back(b.addFuncUnit(
            (is_ls ? "ls" : "fu") + std::to_string(u),
            {is_ls ? OpClass::LoadStore : OpClass::Add,
             OpClass::CopyCls},
            2));
        // Each input reads one random file through a dedicated wire.
        for (int s = 0; s < 2; ++s) {
            RegFileId rf = files[static_cast<std::size_t>(
                rng.uniformInt(0, num_files - 1))];
            b.connectReadDirect(rf, b.input(units[u], s));
        }
    }

    // Shared write-side buses with one shared write port per file.
    int num_buses = static_cast<int>(rng.uniformInt(2, 4));
    std::vector<WritePortId> ports;
    for (RegFileId rf : files)
        ports.push_back(b.addWritePort(rf));
    for (int i = 0; i < num_buses; ++i) {
        BusId bus = b.addBus("bus" + std::to_string(i));
        for (FuncUnitId fu : units) {
            if (rng.chance(0.7))
                b.connectOutputToBus(b.output(fu), bus);
        }
        for (WritePortId wp : ports) {
            if (rng.chance(0.7))
                b.connectBusToWritePort(bus, wp);
        }
    }
    // Guarantee every output reaches something: a fallback bus
    // driving every port.
    BusId fallback = b.addBus("fallback");
    for (FuncUnitId fu : units)
        b.connectOutputToBus(b.output(fu), fallback);
    for (WritePortId wp : ports)
        b.connectBusToWritePort(fallback, wp);

    return b.build();
}

/** Small random integer kernel matching the machine's capabilities. */
Kernel
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    KernelBuilder b("k" + std::to_string(seed));
    b.block("body");
    std::vector<Val> values;
    values.push_back(b.load(1000, 0, "in0"));
    values.push_back(b.load(2000, 0, "in1"));
    auto pick = [&]() {
        return values[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(values.size()) - 1))];
    };
    int ops = static_cast<int>(rng.uniformInt(6, 14));
    for (int i = 0; i < ops; ++i) {
        switch (rng.uniformInt(0, 3)) {
          case 0: values.push_back(b.iadd(pick(), pick())); break;
          case 1: values.push_back(b.isub(pick(), pick())); break;
          case 2: values.push_back(b.imin(pick(), pick())); break;
          default:
            values.push_back(b.iadd(pick(), rng.uniformInt(-9, 9)));
            break;
        }
    }
    b.store(5000, values.back());
    return b.take();
}

class MachineFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(MachineFuzz, CopyConnectedMachinesSchedule)
{
    std::uint64_t seed = GetParam();
    Machine machine = randomMachine(seed);

    std::string why;
    if (!machine.checkCopyConnected(&why)) {
        GTEST_SKIP() << "not copy-connected: " << why;
    }

    for (int k = 0; k < 3; ++k) {
        Kernel kernel = randomKernel(seed * 10 + k);
        ASSERT_TRUE(verifyKernel(kernel).empty());
        ScheduleResult result =
            scheduleBlock(kernel, BlockId(0), machine);
        ASSERT_TRUE(result.success)
            << machine.name() << ": " << result.failure;
        auto problems =
            validateSchedule(result.kernel, machine, result.schedule);
        for (const auto &p : problems)
            ADD_FAILURE() << machine.name() << ": " << p;

        MemoryImage mem;
        mem.storeInt(1000, 7);
        mem.storeInt(2000, -3);
        SimResult sim = simulateBlock(result.kernel, machine,
                                      result.schedule, mem, 1);
        for (const auto &p : sim.problems)
            ADD_FAILURE() << machine.name() << ": sim: " << p;
    }
}

TEST_P(MachineFuzz, GeneratedMachinesAreUsuallyConnected)
{
    // Sanity on the generator itself: the fallback bus makes most
    // machines copy-connected (every unit copies and can write every
    // file; reads are the only constraint).
    Machine machine = randomMachine(GetParam());
    std::string why;
    EXPECT_TRUE(machine.checkCopyConnected(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzz,
                         ::testing::Range(100, 120));

} // namespace
} // namespace cs
