/**
 * @file
 * Tests for the Section-7 register pressure analysis: interval
 * construction, modulo variable expansion, overflow detection, and
 * spill planning.
 */

#include <gtest/gtest.h>

#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "core/register_pressure.hpp"
#include "ir/builder.hpp"
#include "machine/builders.hpp"
#include "sim/harness.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

TEST(Pressure, SimpleChainHasLiveIntervals)
{
    Machine machine = makeCentral();
    KernelBuilder b("chain");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val y = b.iadd(x, 1, "y");
    b.store(200, y);
    Kernel kernel = b.take();
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);

    PressureReport report = analyzeRegisterPressure(
        sched.kernel, machine, sched.schedule);
    // x and y both stage through the central file.
    EXPECT_EQ(report.intervals.size(), 2u);
    EXPECT_TRUE(report.fits());
    EXPECT_GT(report.worstUtilization(), 0.0);
    EXPECT_LT(report.worstUtilization(), 0.2);
}

TEST(Pressure, IntervalTimingMatchesSchedule)
{
    Machine machine = makeCentral();
    KernelBuilder b("t");
    b.block("body");
    Val x = b.load(100, 0, "x"); // latency 2
    Val y = b.iadd(x, 1, "y");
    b.store(200, y);
    Kernel kernel = b.take();
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);

    PressureReport report = analyzeRegisterPressure(
        sched.kernel, machine, sched.schedule);
    for (const LiveInterval &interval : report.intervals) {
        const Value &value = sched.kernel.value(interval.value);
        const Placement &def =
            sched.schedule.placement(value.def);
        int lat = machine.latency(
            sched.kernel.operation(value.def).opcode);
        EXPECT_EQ(interval.from, def.cycle + lat);
        EXPECT_GE(interval.to, interval.from);
    }
}

TEST(Pressure, ModuloExpansionCountsInstances)
{
    LiveInterval interval;
    interval.from = 0;
    interval.to = 9; // length 10
    EXPECT_EQ(interval.instances(0), 1);
    EXPECT_EQ(interval.instances(10), 1);
    EXPECT_EQ(interval.instances(5), 2);
    EXPECT_EQ(interval.instances(3), 4);
}

TEST(Pressure, FirDelayLineDominatesDemand)
{
    // FIR's 55-deep delay line must occupy many registers per
    // iteration when pipelined at II=19.
    Machine machine = makeCentral();
    const KernelSpec &spec = kernelByName("FIR-FP");
    Kernel kernel = spec.build();
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(pipe.success);
    PressureReport report = analyzeRegisterPressure(
        pipe.inner.kernel, machine, pipe.inner.schedule);
    // x survives 55 iterations: at least 56 instances of x alone...
    // but only the distances actually read contribute intervals, so
    // demand is substantial without being absurd.
    EXPECT_GE(report.files[0].required, 40);
}

TEST(Pressure, StandardKernelsFitStandardMachines)
{
    for (const char *name : {"FFT", "Block Warp", "DCT"}) {
        const KernelSpec &spec = kernelByName(name);
        for (int kind = 0; kind < 2; ++kind) {
            Machine machine =
                kind == 0 ? makeCentral() : makeDistributed();
            KernelRunResult run = runKernel(spec, machine, true);
            ASSERT_TRUE(run.scheduled);
            PressureReport report = analyzeRegisterPressure(
                run.sched.kernel, machine, run.sched.schedule);
            EXPECT_TRUE(report.fits())
                << name << " on " << machine.name() << ": "
                << describePressure(machine, report);
        }
    }
}

TEST(Pressure, OverflowDetectedAndSpillsPlanned)
{
    // Tiny register files force an overflow.
    StdMachineConfig cfg;
    cfg.totalRegisters = 4; // distributed: 4/32 -> clamped to 4 each
    Machine machine = makeCentral(cfg);
    // Central with 4 registers and a kernel with many long-lived
    // values overflows.
    KernelBuilder b("fat");
    b.block("body");
    std::vector<Val> vals;
    for (int i = 0; i < 8; ++i)
        vals.push_back(b.load(100 + i, 0));
    Val acc = b.iadd(vals[0], vals[1]);
    for (int i = 2; i < 8; ++i)
        acc = b.iadd(acc, vals[i]);
    b.store(200, acc);
    Kernel kernel = b.take();
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);
    PressureReport report = analyzeRegisterPressure(
        sched.kernel, machine, sched.schedule);
    EXPECT_FALSE(report.fits());
    // Central has nowhere to spill to: planning must fail loudly.
    EXPECT_THROW(planSpills(machine, report), FatalError);
}

TEST(Pressure, SpillPlanParksInReachableFiles)
{
    // Synthetic report on the distributed machine: one input file
    // over capacity by two while everything else is idle; the plan
    // must park two values in reachable files.
    Machine machine = makeDistributed();
    PressureReport report;
    RegFileId hot(0);
    int capacity = machine.regFile(hot).capacity;
    for (int i = 0; i < capacity + 2; ++i) {
        LiveInterval interval;
        interval.regFile = hot;
        interval.value = ValueId(static_cast<std::uint32_t>(i));
        interval.from = 0;
        interval.to = 10 + i; // distinct lengths for ordering
        report.intervals.push_back(interval);
    }
    for (std::size_t r = 0; r < machine.numRegFiles(); ++r) {
        RegFilePressure p;
        p.regFile = RegFileId(static_cast<std::uint32_t>(r));
        p.capacity =
            machine.regFile(p.regFile).capacity;
        p.required = r == 0 ? capacity + 2 : 0;
        report.files.push_back(p);
    }
    report.overflows.push_back(hot);

    auto plan = planSpills(machine, report);
    ASSERT_EQ(plan.size(), 2u);
    for (const SpillPlan &spill : plan) {
        EXPECT_EQ(spill.from, hot);
        EXPECT_NE(spill.park, hot);
        EXPECT_LT(machine.copyDistance(spill.from, spill.park),
                  Machine::kUnreachable);
        EXPECT_LT(machine.copyDistance(spill.park, spill.from),
                  Machine::kUnreachable);
        EXPECT_EQ(spill.copies, 2);
    }
    // Longest intervals evicted first.
    EXPECT_EQ(plan[0].value.index(), capacity + 1u);
    EXPECT_EQ(plan[1].value.index(), capacity + 0u);
}

TEST(Pressure, FirDelayLineOverflowsSmallDistributedFiles)
{
    // An honest modeling consequence: a 56-deep register-resident
    // delay line cannot fit 8-entry distributed files; the analysis
    // must say so rather than pretend.
    Machine machine = makeDistributed();
    const KernelSpec &spec = kernelByName("FIR-FP");
    Kernel kernel = spec.build();
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(pipe.success);
    PressureReport report = analyzeRegisterPressure(
        pipe.inner.kernel, machine, pipe.inner.schedule);
    EXPECT_FALSE(report.fits());
    EXPECT_GT(report.worstUtilization(), 1.0);
}

} // namespace
} // namespace cs
