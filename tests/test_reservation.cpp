/**
 * @file
 * Unit tests for the reservation table: the paper's stub sharing and
 * conflict rules, functional-unit occupancy, and modulo folding.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "core/reservation.hpp"
#include "machine/builder.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

/** Two units, two files, one shared result bus. */
Machine
testMachine()
{
    MachineBuilder b("resv");
    RegFileId rf0 = b.addRegFile("RF0", 8);
    RegFileId rf1 = b.addRegFile("RF1", 8);
    FuncUnitId fu0 =
        b.addFuncUnit("A", {OpClass::Add, OpClass::CopyCls}, 2);
    FuncUnitId fu1 =
        b.addFuncUnit("B", {OpClass::Add, OpClass::CopyCls}, 2);
    for (int s = 0; s < 2; ++s) {
        b.connectReadDirect(rf0, b.input(fu0, s));
        b.connectReadDirect(rf1, b.input(fu1, s));
    }
    BusId bus = b.addBus("shared");
    WritePortId wp0 = b.addWritePort(rf0);
    WritePortId wp1 = b.addWritePort(rf1);
    b.connectOutputToBus(b.output(fu0), bus);
    b.connectOutputToBus(b.output(fu1), bus);
    b.connectBusToWritePort(bus, wp0);
    b.connectBusToWritePort(bus, wp1);
    return b.build();
}

class ReservationTest : public ::testing::Test
{
  protected:
    ReservationTest() : machine(testMachine()) {}

    Machine machine;
};

TEST_F(ReservationTest, FuOccupancy)
{
    ReservationTable table(machine);
    FuncUnitId fu(0);
    EXPECT_TRUE(table.fuFree(fu, 3));
    table.acquireFu(fu, 3, OperationId(7));
    EXPECT_FALSE(table.fuFree(fu, 3));
    EXPECT_TRUE(table.fuFree(fu, 4));
    EXPECT_TRUE(table.fuFree(FuncUnitId(1), 3));
    table.releaseFu(fu, 3, OperationId(7));
    EXPECT_TRUE(table.fuFree(fu, 3));
}

TEST_F(ReservationTest, WriteStubSharingSameValue)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ASSERT_EQ(stubs.size(), 2u);
    ValueId v(0);

    table.acquireWrite(stubs[0], v, 5);
    // Identical stub, same value: refcounted share.
    EXPECT_TRUE(table.canAcquireWrite(stubs[0], v, 5));
    // Same value broadcast into the other file over the same bus.
    EXPECT_TRUE(table.canAcquireWrite(stubs[1], v, 5));
    // A different value on the shared bus conflicts.
    EXPECT_FALSE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
    EXPECT_FALSE(table.canAcquireWrite(stubs[1], ValueId(1), 5));
    // Other cycles are free.
    EXPECT_TRUE(table.canAcquireWrite(stubs[1], ValueId(1), 6));
}

TEST_F(ReservationTest, WriteRefcounting)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ValueId v(0);
    table.acquireWrite(stubs[0], v, 5);
    table.acquireWrite(stubs[0], v, 5); // shared
    table.releaseWrite(stubs[0], v, 5);
    // Still held by the second reference.
    EXPECT_FALSE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
    table.releaseWrite(stubs[0], v, 5);
    EXPECT_TRUE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
}

TEST_F(ReservationTest, SameValueDifferentOutputConflicts)
{
    ReservationTable table(machine);
    const auto &a_stubs = machine.writeStubs(FuncUnitId(0));
    const auto &b_stubs = machine.writeStubs(FuncUnitId(1));
    ValueId v(0);
    table.acquireWrite(a_stubs[0], v, 5);
    // "Same value" from a different physical output is still a second
    // driver on the bus.
    EXPECT_FALSE(table.canAcquireWrite(b_stubs[0], v, 5));
}

TEST_F(ReservationTest, ReadStubRules)
{
    ReservationTable table(machine);
    const auto &slot0 = machine.readStubs(FuncUnitId(0), 0);
    OperationId reader(3);

    table.acquireRead(slot0[0], reader, 0, 4);
    // Identical stub for the same operand: shareable.
    EXPECT_TRUE(table.canAcquireRead(slot0[0], reader, 0, 4));
    // A different operand cannot use the same port/wire.
    EXPECT_FALSE(table.canAcquireRead(slot0[0], OperationId(9), 0, 4));
    // Different cycle is fine.
    EXPECT_TRUE(table.canAcquireRead(slot0[0], OperationId(9), 0, 5));
    table.releaseRead(slot0[0], reader, 0, 4);
    EXPECT_TRUE(table.canAcquireRead(slot0[0], OperationId(9), 0, 4));
}

TEST_F(ReservationTest, BusRoleExclusion)
{
    // A write on a bus excludes reads of that bus in the same cycle
    // (and vice versa). Build a machine where one bus serves both
    // roles: read port -> bus -> input and output -> bus -> port.
    MachineBuilder b("dual");
    RegFileId rf = b.addRegFile("RF", 8);
    FuncUnitId fu = b.addFuncUnit("A", {OpClass::Add}, 1);
    BusId bus = b.addBus("dual");
    ReadPortId rp = b.addReadPort(rf);
    WritePortId wp = b.addWritePort(rf);
    b.connectReadPortToBus(rp, bus);
    b.connectBusToInput(bus, b.input(fu, 0));
    b.connectOutputToBus(b.output(fu), bus);
    b.connectBusToWritePort(bus, wp);
    Machine m = b.build();

    ReservationTable table(m);
    ReadStub read{rp, bus, m.funcUnit(fu).inputs[0]};
    WriteStub write{m.funcUnit(fu).output, bus, wp};
    table.acquireRead(read, OperationId(0), 0, 2);
    EXPECT_FALSE(table.canAcquireWrite(write, ValueId(0), 2));
    EXPECT_TRUE(table.canAcquireWrite(write, ValueId(0), 3));
}

TEST_F(ReservationTest, ModuloFolding)
{
    ReservationTable table(machine, 4);
    FuncUnitId fu(0);
    table.acquireFu(fu, 2, OperationId(1));
    // Cycle 6 == 2 mod 4: same reservation slot.
    EXPECT_FALSE(table.fuFree(fu, 6));
    EXPECT_FALSE(table.fuFree(fu, 10));
    EXPECT_TRUE(table.fuFree(fu, 5));
    EXPECT_EQ(table.norm(7), 3);
    EXPECT_EQ(table.norm(-1), 3);
}

TEST_F(ReservationTest, BusesOccupiedAndAvailability)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ValueId v(0);
    EXPECT_EQ(table.busesOccupied(5), 0);
    table.acquireWrite(stubs[0], v, 5);
    EXPECT_EQ(table.busesOccupied(5), 1);
    EXPECT_TRUE(table.busAvailableForValue(stubs[0].bus, v, 5));
    EXPECT_FALSE(
        table.busAvailableForValue(stubs[0].bus, ValueId(1), 5));
    EXPECT_TRUE(table.busCarriesValue(stubs[0].bus, v, 5));
    EXPECT_FALSE(table.busCarriesValue(stubs[0].bus, ValueId(1), 5));
    EXPECT_TRUE(table.hasIdenticalWrite(stubs[0], v, 5));
    EXPECT_FALSE(table.hasIdenticalWrite(stubs[1], v, 5));
}

TEST_F(ReservationTest, ReleasingUnheldPanics)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    EXPECT_THROW(table.releaseWrite(stubs[0], ValueId(0), 1),
                 PanicError);
    EXPECT_THROW(table.releaseFu(FuncUnitId(0), 1, OperationId(0)),
                 PanicError);
}

TEST_F(ReservationTest, ModuloFoldingIiOne)
{
    // ii == 1: every cycle shares the single reservation slot.
    ReservationTable table(machine, 1);
    EXPECT_EQ(table.norm(0), 0);
    EXPECT_EQ(table.norm(17), 0);
    EXPECT_EQ(table.norm(-3), 0);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ValueId v(0);
    table.acquireWrite(stubs[0], v, 9);
    EXPECT_TRUE(table.hasIdenticalWrite(stubs[0], v, 0));
    EXPECT_TRUE(table.hasIdenticalWrite(stubs[0], v, 123));
    EXPECT_FALSE(table.canAcquireWrite(stubs[0], ValueId(1), 42));
    table.releaseWrite(stubs[0], v, 2);
    EXPECT_TRUE(table.canAcquireWrite(stubs[0], ValueId(1), 42));
}

TEST_F(ReservationTest, BroadcastWriteReleaseKeepsSharedResources)
{
    // Two stubs of one value broadcast over the shared bus into both
    // files: they share the output and the bus. Releasing one must
    // keep the shared occupancy visible until the last use goes.
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ValueId v(0);
    table.acquireWrite(stubs[0], v, 5);
    table.acquireWrite(stubs[1], v, 5);
    EXPECT_EQ(table.busesOccupied(5), 1);

    table.releaseWrite(stubs[0], v, 5);
    // The bus still carries the value through the remaining use, and
    // the shared output is still driven: another value must conflict.
    EXPECT_TRUE(table.busCarriesValue(stubs[1].bus, v, 5));
    EXPECT_TRUE(table.busHasWrite(stubs[1].bus, 5));
    EXPECT_EQ(table.busWriteValue(stubs[1].bus, 5), v);
    EXPECT_EQ(table.busesOccupied(5), 1);
    EXPECT_FALSE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
    EXPECT_TRUE(table.hasIdenticalWrite(stubs[1], v, 5));
    EXPECT_FALSE(table.hasIdenticalWrite(stubs[0], v, 5));
    // Rejoining the broadcast is still allowed.
    EXPECT_TRUE(table.canAcquireWrite(stubs[0], v, 5));

    table.releaseWrite(stubs[1], v, 5);
    EXPECT_EQ(table.busesOccupied(5), 0);
    EXPECT_FALSE(table.busHasWrite(stubs[1].bus, 5));
    EXPECT_FALSE(table.busWriteValue(stubs[1].bus, 5).valid());
    EXPECT_TRUE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
}

TEST_F(ReservationTest, IdenticalReadSharingRefcounts)
{
    ReservationTable table(machine);
    const auto &slot0 = machine.readStubs(FuncUnitId(0), 0);
    OperationId reader(3);
    table.acquireRead(slot0[0], reader, 0, 4);
    table.acquireRead(slot0[0], reader, 0, 4); // identical: shared
    EXPECT_TRUE(table.busHasRead(slot0[0].bus, 4));
    table.releaseRead(slot0[0], reader, 0, 4);
    // Still held by the second reference.
    EXPECT_FALSE(table.canAcquireRead(slot0[0], OperationId(9), 0, 4));
    EXPECT_TRUE(table.busHasRead(slot0[0].bus, 4));
    table.releaseRead(slot0[0], reader, 0, 4);
    EXPECT_TRUE(table.canAcquireRead(slot0[0], OperationId(9), 0, 4));
    EXPECT_FALSE(table.busHasRead(slot0[0].bus, 4));
}

/**
 * Reference implementation of the sharing rules: the plain use-list
 * scan the table used before the bitset fast paths. The randomized
 * test below drives both through identical traces and demands
 * identical answers for every probe.
 */
class RefTable
{
  public:
    RefTable(const Machine &machine, int ii)
        : machine_(machine), ii_(ii)
    {}

    int
    norm(int cycle) const
    {
        if (ii_ <= 0)
            return cycle;
        int m = cycle % ii_;
        return m < 0 ? m + ii_ : m;
    }

    bool
    canAcquireWrite(const WriteStub &stub, ValueId value, int cycle) const
    {
        auto it = cycles_.find(norm(cycle));
        if (it == cycles_.end())
            return true;
        for (const ReadUse &use : it->second.reads) {
            if (use.stub.bus == stub.bus)
                return false;
        }
        for (const WriteUse &use : it->second.writes) {
            if (use.value == value) {
                if (use.stub == stub)
                    continue;
                if (sameResultWriteStubsConflict(machine_, use.stub,
                                                 stub)) {
                    return false;
                }
                if (use.stub.output != stub.output)
                    return false;
            } else if (writeStubsShareResource(use.stub, stub)) {
                return false;
            }
        }
        return true;
    }

    bool
    canAcquireRead(const ReadStub &stub, OperationId reader, int slot,
                   int cycle) const
    {
        auto it = cycles_.find(norm(cycle));
        if (it == cycles_.end())
            return true;
        for (const WriteUse &use : it->second.writes) {
            if (use.stub.bus == stub.bus)
                return false;
        }
        for (const ReadUse &use : it->second.reads) {
            if (use.reader == reader && use.slot == slot) {
                if (use.stub != stub)
                    return false;
            } else if (readStubsShareResource(use.stub, stub)) {
                return false;
            }
        }
        return true;
    }

    void
    acquireWrite(const WriteStub &stub, ValueId value, int cycle)
    {
        auto &writes = cycles_[norm(cycle)].writes;
        for (WriteUse &use : writes) {
            if (use.stub == stub && use.value == value) {
                ++use.refs;
                return;
            }
        }
        writes.push_back({stub, value, 1});
    }

    void
    releaseWrite(const WriteStub &stub, ValueId value, int cycle)
    {
        auto &writes = cycles_[norm(cycle)].writes;
        for (std::size_t i = 0; i < writes.size(); ++i) {
            if (writes[i].stub == stub && writes[i].value == value) {
                if (--writes[i].refs == 0)
                    writes.erase(writes.begin() + i);
                return;
            }
        }
        ADD_FAILURE() << "reference: releasing unheld write";
    }

    void
    acquireRead(const ReadStub &stub, OperationId reader, int slot,
                int cycle)
    {
        auto &reads = cycles_[norm(cycle)].reads;
        for (ReadUse &use : reads) {
            if (use.stub == stub && use.reader == reader &&
                use.slot == slot) {
                ++use.refs;
                return;
            }
        }
        reads.push_back({stub, reader, slot, 1});
    }

    void
    releaseRead(const ReadStub &stub, OperationId reader, int slot,
                int cycle)
    {
        auto &reads = cycles_[norm(cycle)].reads;
        for (std::size_t i = 0; i < reads.size(); ++i) {
            if (reads[i].stub == stub && reads[i].reader == reader &&
                reads[i].slot == slot) {
                if (--reads[i].refs == 0)
                    reads.erase(reads.begin() + i);
                return;
            }
        }
        ADD_FAILURE() << "reference: releasing unheld read";
    }

    bool
    hasIdenticalWrite(const WriteStub &stub, ValueId value,
                      int cycle) const
    {
        auto it = cycles_.find(norm(cycle));
        if (it == cycles_.end())
            return false;
        for (const WriteUse &use : it->second.writes) {
            if (use.stub == stub && use.value == value)
                return true;
        }
        return false;
    }

    int
    busesOccupied(int cycle) const
    {
        auto it = cycles_.find(norm(cycle));
        if (it == cycles_.end())
            return 0;
        std::vector<BusId> seen;
        for (const WriteUse &use : it->second.writes) {
            if (std::find(seen.begin(), seen.end(), use.stub.bus) ==
                seen.end()) {
                seen.push_back(use.stub.bus);
            }
        }
        for (const ReadUse &use : it->second.reads) {
            if (std::find(seen.begin(), seen.end(), use.stub.bus) ==
                seen.end()) {
                seen.push_back(use.stub.bus);
            }
        }
        return static_cast<int>(seen.size());
    }

    bool
    busCarriesValue(BusId bus, ValueId value, int cycle) const
    {
        auto it = cycles_.find(norm(cycle));
        if (it == cycles_.end())
            return false;
        for (const WriteUse &use : it->second.writes) {
            if (use.stub.bus == bus && use.value == value)
                return true;
        }
        return false;
    }

    bool
    busAvailableForValue(BusId bus, ValueId value, int cycle) const
    {
        auto it = cycles_.find(norm(cycle));
        if (it == cycles_.end())
            return true;
        for (const ReadUse &use : it->second.reads) {
            if (use.stub.bus == bus)
                return false;
        }
        for (const WriteUse &use : it->second.writes) {
            if (use.stub.bus == bus && use.value != value)
                return false;
        }
        return true;
    }

  private:
    struct WriteUse
    {
        WriteStub stub;
        ValueId value;
        int refs;
    };
    struct ReadUse
    {
        ReadStub stub;
        OperationId reader;
        int slot;
        int refs;
    };
    struct Cyc
    {
        std::vector<WriteUse> writes;
        std::vector<ReadUse> reads;
    };

    const Machine &machine_;
    int ii_;
    std::map<int, Cyc> cycles_;
};

class ReservationRandomEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(ReservationRandomEquivalence, MatchesReferenceOnRandomTraces)
{
    const int ii = GetParam();
    Machine machine = testMachine();
    ReservationTable table(machine, ii);
    RefTable ref(machine, ii);

    // Everything acquirable: write stubs of both units, read stubs of
    // every slot of both units.
    std::vector<WriteStub> wstubs;
    std::vector<ReadStub> rstubs;
    for (std::uint32_t f = 0; f < machine.numFuncUnits(); ++f) {
        FuncUnitId fu(f);
        for (const WriteStub &stub : machine.writeStubs(fu))
            wstubs.push_back(stub);
        for (int s = 0; s < 2; ++s) {
            for (const ReadStub &stub : machine.readStubs(fu, s))
                rstubs.push_back(stub);
        }
    }
    ASSERT_FALSE(wstubs.empty());
    ASSERT_FALSE(rstubs.empty());

    struct HeldWrite
    {
        WriteStub stub;
        ValueId value;
        int cycle;
    };
    struct HeldRead
    {
        ReadStub stub;
        OperationId reader;
        int slot;
        int cycle;
    };
    std::vector<HeldWrite> held_writes;
    std::vector<HeldRead> held_reads;

    std::mt19937 rng(20260806u + static_cast<unsigned>(ii));
    auto pick = [&](int n) {
        return static_cast<int>(rng() % static_cast<unsigned>(n));
    };

    for (int iter = 0; iter < 6000; ++iter) {
        int action = pick(6);
        int cycle = pick(8);
        switch (action) {
          case 0: { // probe + maybe acquire a write stub
            const WriteStub &stub = wstubs[pick(
                static_cast<int>(wstubs.size()))];
            ValueId value(static_cast<std::uint32_t>(pick(3)));
            bool can = table.canAcquireWrite(stub, value, cycle);
            ASSERT_EQ(can, ref.canAcquireWrite(stub, value, cycle))
                << "canAcquireWrite diverged at iter " << iter;
            if (can && pick(2) == 0) {
                table.acquireWrite(stub, value, cycle);
                ref.acquireWrite(stub, value, cycle);
                held_writes.push_back({stub, value, cycle});
            }
            break;
          }
          case 1: { // probe + maybe acquire a read stub
            const ReadStub &stub =
                rstubs[pick(static_cast<int>(rstubs.size()))];
            OperationId reader(static_cast<std::uint32_t>(pick(3)));
            int slot = pick(2);
            bool can = table.canAcquireRead(stub, reader, slot, cycle);
            ASSERT_EQ(can, ref.canAcquireRead(stub, reader, slot, cycle))
                << "canAcquireRead diverged at iter " << iter;
            if (can && pick(2) == 0) {
                table.acquireRead(stub, reader, slot, cycle);
                ref.acquireRead(stub, reader, slot, cycle);
                held_reads.push_back({stub, reader, slot, cycle});
            }
            break;
          }
          case 2: { // release a random held write
            if (held_writes.empty())
                break;
            int i = pick(static_cast<int>(held_writes.size()));
            HeldWrite held = held_writes[i];
            held_writes.erase(held_writes.begin() + i);
            table.releaseWrite(held.stub, held.value, held.cycle);
            ref.releaseWrite(held.stub, held.value, held.cycle);
            break;
          }
          case 3: { // release a random held read
            if (held_reads.empty())
                break;
            int i = pick(static_cast<int>(held_reads.size()));
            HeldRead held = held_reads[i];
            held_reads.erase(held_reads.begin() + i);
            table.releaseRead(held.stub, held.reader, held.slot,
                              held.cycle);
            ref.releaseRead(held.stub, held.reader, held.slot,
                            held.cycle);
            break;
          }
          case 4: { // bus-level queries
            BusId bus(static_cast<std::uint32_t>(
                pick(static_cast<int>(machine.numBuses()))));
            ValueId value(static_cast<std::uint32_t>(pick(3)));
            ASSERT_EQ(table.busesOccupied(cycle),
                      ref.busesOccupied(cycle))
                << "busesOccupied diverged at iter " << iter;
            ASSERT_EQ(table.busCarriesValue(bus, value, cycle),
                      ref.busCarriesValue(bus, value, cycle))
                << "busCarriesValue diverged at iter " << iter;
            ASSERT_EQ(table.busAvailableForValue(bus, value, cycle),
                      ref.busAvailableForValue(bus, value, cycle))
                << "busAvailableForValue diverged at iter " << iter;
            break;
          }
          default: { // identical-write query
            const WriteStub &stub = wstubs[pick(
                static_cast<int>(wstubs.size()))];
            ValueId value(static_cast<std::uint32_t>(pick(3)));
            ASSERT_EQ(table.hasIdenticalWrite(stub, value, cycle),
                      ref.hasIdenticalWrite(stub, value, cycle))
                << "hasIdenticalWrite diverged at iter " << iter;
            break;
          }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FoldingFactors, ReservationRandomEquivalence,
                         ::testing::Values(0, 1, 4),
                         [](const auto &info) {
                             return "ii" + std::to_string(info.param);
                         });

} // namespace
} // namespace cs
