/**
 * @file
 * Unit tests for the reservation table: the paper's stub sharing and
 * conflict rules, functional-unit occupancy, and modulo folding.
 */

#include <gtest/gtest.h>

#include "core/reservation.hpp"
#include "machine/builder.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

/** Two units, two files, one shared result bus. */
Machine
testMachine()
{
    MachineBuilder b("resv");
    RegFileId rf0 = b.addRegFile("RF0", 8);
    RegFileId rf1 = b.addRegFile("RF1", 8);
    FuncUnitId fu0 =
        b.addFuncUnit("A", {OpClass::Add, OpClass::CopyCls}, 2);
    FuncUnitId fu1 =
        b.addFuncUnit("B", {OpClass::Add, OpClass::CopyCls}, 2);
    for (int s = 0; s < 2; ++s) {
        b.connectReadDirect(rf0, b.input(fu0, s));
        b.connectReadDirect(rf1, b.input(fu1, s));
    }
    BusId bus = b.addBus("shared");
    WritePortId wp0 = b.addWritePort(rf0);
    WritePortId wp1 = b.addWritePort(rf1);
    b.connectOutputToBus(b.output(fu0), bus);
    b.connectOutputToBus(b.output(fu1), bus);
    b.connectBusToWritePort(bus, wp0);
    b.connectBusToWritePort(bus, wp1);
    return b.build();
}

class ReservationTest : public ::testing::Test
{
  protected:
    ReservationTest() : machine(testMachine()) {}

    Machine machine;
};

TEST_F(ReservationTest, FuOccupancy)
{
    ReservationTable table(machine);
    FuncUnitId fu(0);
    EXPECT_TRUE(table.fuFree(fu, 3));
    table.acquireFu(fu, 3, OperationId(7));
    EXPECT_FALSE(table.fuFree(fu, 3));
    EXPECT_TRUE(table.fuFree(fu, 4));
    EXPECT_TRUE(table.fuFree(FuncUnitId(1), 3));
    table.releaseFu(fu, 3, OperationId(7));
    EXPECT_TRUE(table.fuFree(fu, 3));
}

TEST_F(ReservationTest, WriteStubSharingSameValue)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ASSERT_EQ(stubs.size(), 2u);
    ValueId v(0);

    table.acquireWrite(stubs[0], v, 5);
    // Identical stub, same value: refcounted share.
    EXPECT_TRUE(table.canAcquireWrite(stubs[0], v, 5));
    // Same value broadcast into the other file over the same bus.
    EXPECT_TRUE(table.canAcquireWrite(stubs[1], v, 5));
    // A different value on the shared bus conflicts.
    EXPECT_FALSE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
    EXPECT_FALSE(table.canAcquireWrite(stubs[1], ValueId(1), 5));
    // Other cycles are free.
    EXPECT_TRUE(table.canAcquireWrite(stubs[1], ValueId(1), 6));
}

TEST_F(ReservationTest, WriteRefcounting)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ValueId v(0);
    table.acquireWrite(stubs[0], v, 5);
    table.acquireWrite(stubs[0], v, 5); // shared
    table.releaseWrite(stubs[0], v, 5);
    // Still held by the second reference.
    EXPECT_FALSE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
    table.releaseWrite(stubs[0], v, 5);
    EXPECT_TRUE(table.canAcquireWrite(stubs[0], ValueId(1), 5));
}

TEST_F(ReservationTest, SameValueDifferentOutputConflicts)
{
    ReservationTable table(machine);
    const auto &a_stubs = machine.writeStubs(FuncUnitId(0));
    const auto &b_stubs = machine.writeStubs(FuncUnitId(1));
    ValueId v(0);
    table.acquireWrite(a_stubs[0], v, 5);
    // "Same value" from a different physical output is still a second
    // driver on the bus.
    EXPECT_FALSE(table.canAcquireWrite(b_stubs[0], v, 5));
}

TEST_F(ReservationTest, ReadStubRules)
{
    ReservationTable table(machine);
    const auto &slot0 = machine.readStubs(FuncUnitId(0), 0);
    OperationId reader(3);

    table.acquireRead(slot0[0], reader, 0, 4);
    // Identical stub for the same operand: shareable.
    EXPECT_TRUE(table.canAcquireRead(slot0[0], reader, 0, 4));
    // A different operand cannot use the same port/wire.
    EXPECT_FALSE(table.canAcquireRead(slot0[0], OperationId(9), 0, 4));
    // Different cycle is fine.
    EXPECT_TRUE(table.canAcquireRead(slot0[0], OperationId(9), 0, 5));
    table.releaseRead(slot0[0], reader, 0, 4);
    EXPECT_TRUE(table.canAcquireRead(slot0[0], OperationId(9), 0, 4));
}

TEST_F(ReservationTest, BusRoleExclusion)
{
    // A write on a bus excludes reads of that bus in the same cycle
    // (and vice versa). Build a machine where one bus serves both
    // roles: read port -> bus -> input and output -> bus -> port.
    MachineBuilder b("dual");
    RegFileId rf = b.addRegFile("RF", 8);
    FuncUnitId fu = b.addFuncUnit("A", {OpClass::Add}, 1);
    BusId bus = b.addBus("dual");
    ReadPortId rp = b.addReadPort(rf);
    WritePortId wp = b.addWritePort(rf);
    b.connectReadPortToBus(rp, bus);
    b.connectBusToInput(bus, b.input(fu, 0));
    b.connectOutputToBus(b.output(fu), bus);
    b.connectBusToWritePort(bus, wp);
    Machine m = b.build();

    ReservationTable table(m);
    ReadStub read{rp, bus, m.funcUnit(fu).inputs[0]};
    WriteStub write{m.funcUnit(fu).output, bus, wp};
    table.acquireRead(read, OperationId(0), 0, 2);
    EXPECT_FALSE(table.canAcquireWrite(write, ValueId(0), 2));
    EXPECT_TRUE(table.canAcquireWrite(write, ValueId(0), 3));
}

TEST_F(ReservationTest, ModuloFolding)
{
    ReservationTable table(machine, 4);
    FuncUnitId fu(0);
    table.acquireFu(fu, 2, OperationId(1));
    // Cycle 6 == 2 mod 4: same reservation slot.
    EXPECT_FALSE(table.fuFree(fu, 6));
    EXPECT_FALSE(table.fuFree(fu, 10));
    EXPECT_TRUE(table.fuFree(fu, 5));
    EXPECT_EQ(table.norm(7), 3);
    EXPECT_EQ(table.norm(-1), 3);
}

TEST_F(ReservationTest, BusesOccupiedAndAvailability)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    ValueId v(0);
    EXPECT_EQ(table.busesOccupied(5), 0);
    table.acquireWrite(stubs[0], v, 5);
    EXPECT_EQ(table.busesOccupied(5), 1);
    EXPECT_TRUE(table.busAvailableForValue(stubs[0].bus, v, 5));
    EXPECT_FALSE(
        table.busAvailableForValue(stubs[0].bus, ValueId(1), 5));
    EXPECT_TRUE(table.busCarriesValue(stubs[0].bus, v, 5));
    EXPECT_FALSE(table.busCarriesValue(stubs[0].bus, ValueId(1), 5));
    EXPECT_TRUE(table.hasIdenticalWrite(stubs[0], v, 5));
    EXPECT_FALSE(table.hasIdenticalWrite(stubs[1], v, 5));
}

TEST_F(ReservationTest, ReleasingUnheldPanics)
{
    ReservationTable table(machine);
    const auto &stubs = machine.writeStubs(FuncUnitId(0));
    EXPECT_THROW(table.releaseWrite(stubs[0], ValueId(0), 1),
                 PanicError);
    EXPECT_THROW(table.releaseFu(FuncUnitId(0), 1, OperationId(0)),
                 PanicError);
}

} // namespace
} // namespace cs
