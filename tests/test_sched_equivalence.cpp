/**
 * @file
 * Schedule-equivalence suite: asserts that the canonical VLIW listing
 * produced for every Table-1 kernel on each of the four evaluation
 * machines — block and modulo paths — stays byte-identical across
 * internal scheduler rewrites (flat reservation tables, scratch
 * buffers, pruning masks, ...).
 *
 * The golden fingerprints in tests/golden_listings.txt were captured
 * from the reference implementation (std::map-backed reservation
 * table, allocation-per-probe candidate enumeration). Regenerate them
 * ONLY for a change that intentionally alters schedules:
 *
 *     CS_WRITE_GOLDENS=1 build/tests/cs_tests \
 *         --gtest_filter='SchedEquivalence*'
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "pipeline/pipeline.hpp"
#include "support/logging.hpp"

#ifndef CS_TEST_DATA_DIR
#define CS_TEST_DATA_DIR "."
#endif

namespace cs {
namespace {

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t state = 14695981039346656037ull;
    for (unsigned char c : data) {
        state ^= c;
        state *= 1099511628211ull;
    }
    return state;
}

std::string
goldenPath()
{
    return std::string(CS_TEST_DATA_DIR) + "/golden_listings.txt";
}

struct GoldenRecord
{
    int ii = 0;
    std::size_t bytes = 0;
    std::uint64_t hash = 0;
};

/** key: "kernel|machine|mode" -> fingerprint. */
std::map<std::string, GoldenRecord> &
goldenTable()
{
    static std::map<std::string, GoldenRecord> table = [] {
        std::map<std::string, GoldenRecord> out;
        std::ifstream in(goldenPath());
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::istringstream fields(line);
            std::string key;
            GoldenRecord record;
            fields >> key >> record.ii >> record.bytes >> std::hex >>
                record.hash >> std::dec;
            if (!key.empty())
                out[key] = record;
        }
        return out;
    }();
    return table;
}

bool
writeGoldensRequested()
{
    const char *env = std::getenv("CS_WRITE_GOLDENS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Accumulates fresh fingerprints when regenerating the golden file. */
std::map<std::string, GoldenRecord> &
freshTable()
{
    static std::map<std::string, GoldenRecord> table;
    return table;
}

Machine
machineByName(const std::string &name)
{
    if (name == "central")
        return makeCentral();
    if (name == "clustered2")
        return makeClustered({}, 2);
    if (name == "clustered4")
        return makeClustered({}, 4);
    CS_ASSERT(name == "distributed", "unknown machine ", name);
    return makeDistributed();
}

class SchedEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{};

TEST_P(SchedEquivalence, ListingsMatchGoldens)
{
    setVerboseLogging(false);
    const auto &[machineName, pipelined] = GetParam();
    Machine machine = machineByName(machineName);
    const bool regen = writeGoldensRequested();

    for (const KernelSpec &spec : allKernels()) {
        Kernel kernel = spec.build();
        int ii = 0;
        std::string listing;
        if (pipelined) {
            PipelineResult result =
                schedulePipelined(kernel, BlockId(0), machine);
            ASSERT_TRUE(result.success)
                << spec.name << " on " << machineName;
            ii = result.ii;
            listing = exportListing(result.inner.kernel, machine,
                                    result.inner.schedule);
        } else {
            ScheduleResult result =
                scheduleBlock(kernel, BlockId(0), machine);
            ASSERT_TRUE(result.success)
                << spec.name << " on " << machineName;
            listing = exportListing(result.kernel, machine,
                                    result.schedule);
        }

        // Keys must not contain whitespace (the golden file is
        // whitespace-separated); kernel names like "Block Warp" do.
        std::string kernelKey = spec.name;
        for (char &c : kernelKey) {
            if (c == ' ')
                c = '_';
        }
        std::string key = kernelKey + "|" + machineName + "|" +
                          (pipelined ? "modulo" : "block");
        GoldenRecord fresh{ii, listing.size(), fnv1a(listing)};
        if (regen) {
            freshTable()[key] = fresh;
            continue;
        }
        auto it = goldenTable().find(key);
        ASSERT_NE(it, goldenTable().end())
            << "no golden fingerprint for " << key
            << " — regenerate with CS_WRITE_GOLDENS=1";
        EXPECT_EQ(fresh.ii, it->second.ii) << key;
        EXPECT_EQ(fresh.bytes, it->second.bytes) << key;
        EXPECT_EQ(fresh.hash, it->second.hash)
            << key << ": canonical listing changed byte-for-byte";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, SchedEquivalence,
    ::testing::Combine(::testing::Values("central", "clustered2",
                                         "clustered4", "distributed"),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_modulo" : "_block");
    });

/**
 * The same 80 golden fingerprints, but produced through the
 * SchedulingPipeline with its shared-analysis context cache and
 * in-flight dedup at their defaults (ON) — the exactness claim of
 * DESIGN.md §5i: analysis sharing must not move a single byte. Every
 * job is submitted twice with scheduler-option variants that differ
 * only in their content key (an unreached budget), so the second
 * variant schedules through a context-cache hit rather than a private
 * analysis, and both listings must still match the golden.
 */
class GoldenViaPipeline
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{};

TEST_P(GoldenViaPipeline, SharedAnalysisKeepsGoldenBytes)
{
    setVerboseLogging(false);
    if (writeGoldensRequested())
        GTEST_SKIP() << "goldens are regenerated by SchedEquivalence";
    const auto &[machineName, pipelined] = GetParam();
    Machine machine = machineByName(machineName);

    std::vector<ScheduleJob> jobs;
    for (const KernelSpec &spec : allKernels()) {
        for (int variant = 0; variant < 2; ++variant) {
            ScheduleJob job;
            job.label = spec.name;
            job.kernel = spec.build();
            job.block = BlockId(0);
            job.machine = &machine;
            job.pipelined = pipelined;
            job.options.permutationBudget += variant;
            jobs.push_back(std::move(job));
        }
    }
    PipelineConfig config;
    config.numThreads = 4;
    SchedulingPipeline pipeline(config);
    std::vector<JobResult> results = pipeline.run(jobs);

    std::size_t i = 0;
    for (const KernelSpec &spec : allKernels()) {
        std::string kernelKey = spec.name;
        for (char &c : kernelKey) {
            if (c == ' ')
                c = '_';
        }
        std::string key = kernelKey + "|" + machineName + "|" +
                          (pipelined ? "modulo" : "block");
        auto it = goldenTable().find(key);
        ASSERT_NE(it, goldenTable().end()) << key;
        for (int variant = 0; variant < 2; ++variant, ++i) {
            const JobResult &result = results[i];
            ASSERT_TRUE(result.success) << key << " v" << variant;
            if (pipelined) {
                EXPECT_EQ(result.ii, it->second.ii) << key;
            }
            EXPECT_EQ(result.listing.size(), it->second.bytes) << key;
            EXPECT_EQ(fnv1a(result.listing), it->second.hash)
                << key << " v" << variant
                << ": listing through the shared-analysis pipeline "
                   "diverged from the golden";
        }
    }
    // The variants really exercised the shared path: every job is a
    // distinct content key, so each of the 20 runs acquired a context,
    // and the 20 acquires share 10 analyses. (Hit counts are not
    // asserted: a concurrent variant pair may benignly race the first
    // build, which counts two misses and adopts one entry.)
    ContextCache::Stats contexts = pipeline.contextCache().stats();
    EXPECT_EQ(contexts.hits + contexts.misses,
              static_cast<std::uint64_t>(jobs.size()));
    EXPECT_EQ(contexts.entries, allKernels().size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, GoldenViaPipeline,
    ::testing::Combine(::testing::Values("central", "clustered2",
                                         "clustered4", "distributed"),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_modulo" : "_block");
    });

/** Runs last (gtest preserves file registration order within a suite
 *  only, so flush from a test-environment teardown instead). */
class GoldenWriter : public ::testing::Environment
{
  public:
    void
    TearDown() override
    {
        if (!writeGoldensRequested() || freshTable().empty())
            return;
        std::ofstream out(goldenPath());
        out << "# Golden schedule fingerprints: key ii bytes "
               "fnv1a-hash(hex)\n"
            << "# Regenerate: CS_WRITE_GOLDENS=1 cs_tests "
               "--gtest_filter='SchedEquivalence*'\n";
        for (const auto &[key, record] : freshTable()) {
            out << key << " " << record.ii << " " << record.bytes
                << " " << std::hex << record.hash << std::dec << "\n";
        }
        std::cerr << "wrote " << freshTable().size()
                  << " golden fingerprints to " << goldenPath() << "\n";
    }
};

const auto *const kGoldenWriterRegistration =
    ::testing::AddGlobalTestEnvironment(new GoldenWriter);

} // namespace
} // namespace cs
