/**
 * @file
 * Focused scheduler tests: the motivating example's structure, copy
 * insertion and reuse, retargeting, ablation switches (Section 4.6),
 * and modulo-scheduling bounds.
 */

#include <gtest/gtest.h>

#include "core/conventional_scheduler.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "ir/builder.hpp"
#include "machine/builders.hpp"
#include "sim/harness.hpp"

namespace cs {
namespace {

Kernel
motivatingKernel()
{
    KernelBuilder b("figure4");
    b.block("body");
    Val bb = b.iadd(1, 2, "b");
    Val aa = b.load(100, 0, "a");
    Val cc = b.iadd(3, 4, "c");
    Val t = b.iadd(aa, bb, "t");
    Val u = b.iadd(aa, cc, "u");
    b.store(200, t);
    b.store(201, u);
    return b.take();
}

TEST(MotivatingExample, ScheduleLengthNearPaper)
{
    // The paper's Figure 7 schedule takes 4 cycles for operations 1-5
    // (plus stores in our version). Communication scheduling should
    // get within a cycle or two of that.
    Machine machine = makeFigure5Machine();
    ScheduleResult result =
        scheduleBlock(motivatingKernel(), BlockId(0), machine);
    ASSERT_TRUE(result.success) << result.failure;
    int ops_5_end = 0;
    // End cycle over the five original compute operations.
    for (std::uint32_t i = 0; i < 5; ++i) {
        const Placement &p =
            result.schedule.placement(OperationId(i));
        ops_5_end = std::max(ops_5_end, p.cycle + 1);
    }
    EXPECT_LE(ops_5_end, 6);
    EXPECT_GE(ops_5_end, 4);
}

TEST(MotivatingExample, RoutesCoverEveryOperand)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result =
        scheduleBlock(motivatingKernel(), BlockId(0), machine);
    ASSERT_TRUE(result.success);
    // Value operands: t(a,b), u(a,c), two stores, plus any copies.
    std::size_t value_operands = 0;
    for (const Operation &op : result.kernel.operations()) {
        for (const Operand &operand : op.operands) {
            if (operand.isValue())
                ++value_operands;
        }
    }
    EXPECT_EQ(result.schedule.routes().size(), value_operands);
}

TEST(ConventionalBaseline, RoutesFineOnCentral)
{
    Machine machine = makeCentral();
    ConventionalResult result =
        scheduleConventional(motivatingKernel(), BlockId(0), machine);
    EXPECT_TRUE(result.fullyRouted());
}

TEST(ConventionalBaseline, FailsOnSharedInterconnect)
{
    ConventionalResult fig5 = scheduleConventional(
        motivatingKernel(), BlockId(0), makeFigure5Machine());
    EXPECT_GT(fig5.unroutable, 0);
    EXPECT_FALSE(fig5.failures.empty());
}

TEST(CopyInsertion, CopiesAppearAndAreScheduled)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result =
        scheduleBlock(motivatingKernel(), BlockId(0), machine);
    ASSERT_TRUE(result.success);
    int copies = 0;
    for (const Operation &op : result.kernel.operations()) {
        if (op.isCopy()) {
            ++copies;
            EXPECT_TRUE(result.schedule.isScheduled(op.id));
        }
    }
    EXPECT_GE(copies, 1);
}

TEST(CopyInsertion, CopyReuseSharesBroadcasts)
{
    // One producer feeding many consumers across clusters: with
    // reuse, the copy count stays near the number of clusters, not
    // the number of consumers.
    KernelBuilder b("fanout");
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    for (int i = 0; i < 12; ++i) {
        Val y = b.iadd(x, i, "y" + std::to_string(i));
        b.store(200 + i, y, 16);
    }
    Kernel kernel = b.take();
    Machine machine = makeClustered({}, 4);
    ScheduleResult result =
        scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success);
    int copies = static_cast<int>(result.kernel.numOperations() -
                                  result.kernel
                                      .numOriginalOperations());
    // x is needed in at most 4 cluster files: a handful of copies,
    // never one per consumer.
    EXPECT_LE(copies, 6);
    auto problems =
        validateSchedule(result.kernel, machine, result.schedule);
    for (const auto &p : problems)
        ADD_FAILURE() << p;
}

TEST(Ablation, CycleOrderStillCorrectOnDistributed)
{
    SchedulerOptions options;
    options.operationOrder = false;
    const KernelSpec &spec = kernelByName("FFT");
    KernelRunResult result =
        runKernel(spec, makeDistributed(), false, options);
    EXPECT_TRUE(result.scheduled);
    EXPECT_TRUE(result.matches);
}

TEST(Ablation, NoCommCostHeuristicStillCorrect)
{
    SchedulerOptions options;
    options.commCostHeuristic = false;
    const KernelSpec &spec = kernelByName("Block Warp");
    KernelRunResult result =
        runKernel(spec, makeClustered({}, 4), false, options);
    EXPECT_TRUE(result.scheduled);
    EXPECT_TRUE(result.matches);
}

TEST(Modulo, AchievedIiRespectsBounds)
{
    const KernelSpec &spec = kernelByName("FIR-FP");
    Kernel kernel = spec.build();
    Machine machine = makeCentral();
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(pipe.success);
    EXPECT_GE(pipe.ii, pipe.resMii);
    EXPECT_GE(pipe.ii, pipe.recMii);
    // 56 multiplies on three multipliers bound the II at 19; the
    // central machine achieves it exactly.
    EXPECT_EQ(pipe.resMii, 19);
    EXPECT_EQ(pipe.ii, 19);
}

TEST(Modulo, AccumulatorRecurrenceBoundsIi)
{
    KernelBuilder b("acc");
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    Val acc = b.fadd(x, 0.0, "acc");
    // acc depends on itself one iteration back.
    Kernel kernel = b.take();
    const_cast<Operation &>(kernel.operation(OperationId(1)))
        .operands[1] = Operand::fromValue(
        kernel.operation(OperationId(1)).result, 1);
    const_cast<Value &>(
        kernel.value(kernel.operation(OperationId(1)).result))
        .uses.emplace_back(OperationId(1), 1);
    Machine machine = makeCentral();
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(pipe.success);
    EXPECT_EQ(pipe.recMii, machine.latency(Opcode::FAdd));
    EXPECT_GE(pipe.ii, pipe.recMii);
}

TEST(Modulo, SelfFeedingAccumulatorSimulates)
{
    KernelBuilder b("acc2");
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    Val acc = b.iadd(x, 0, "sum");
    Kernel kernel = b.take();
    const_cast<Operation &>(kernel.operation(OperationId(1)))
        .operands[1] = Operand::fromValue(
        kernel.operation(OperationId(1)).result, 1);
    const_cast<Value &>(
        kernel.value(kernel.operation(OperationId(1)).result))
        .uses.emplace_back(OperationId(1), 1);
    // Store the running sum each iteration.
    kernel.addOperation(
        BlockId(0), Opcode::Store,
        {Operand::fromInt(500),
         Operand::fromValue(kernel.operation(OperationId(1)).result)});
    const_cast<Operation &>(kernel.operation(OperationId(2)))
        .iterStride = 1;

    Machine machine = makeDistributed();
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(pipe.success) << pipe.inner.failure;

    MemoryImage mem;
    for (int i = 0; i < 5; ++i)
        mem.storeInt(100 + i, i + 1);
    SimResult sim = simulateBlock(pipe.inner.kernel, machine,
                                  pipe.inner.schedule, mem, 5);
    ASSERT_TRUE(sim.ok) << sim.problems[0];
    // Running sums 1, 3, 6, 10, 15.
    EXPECT_EQ(sim.memory.loadInt(500), 1);
    EXPECT_EQ(sim.memory.loadInt(502), 6);
    EXPECT_EQ(sim.memory.loadInt(504), 15);
}

TEST(Stats, DistributedSchedulesWithoutBacktrackingPathologies)
{
    // Section 5: "Communication scheduling does not require
    // backtracking to schedule any of the evaluation kernels on the
    // distributed register file architecture" — our analogue: no
    // budget exhaustion on the plain schedules.
    Machine machine = makeDistributed();
    for (const KernelSpec &spec : allKernels()) {
        if (spec.name == "Sort" || spec.name == "Merge")
            continue; // exercised by the bench (slow here)
        KernelRunResult result = runKernel(spec, machine, false);
        ASSERT_TRUE(result.scheduled) << spec.name;
        EXPECT_EQ(result.sched.stats.get("attempt_budget_exhausted"),
                  0u)
            << spec.name;
    }
}

TEST(Scheduler, RejectsInfeasibleWindow)
{
    // An op window bounded by a carried reader must fail gracefully
    // when the II is too small; schedulePipelined then raises the II.
    KernelBuilder b("tight");
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    Val y = b.fdiv(x, 2.0, "y"); // latency 8
    Kernel kernel = b.take();
    const_cast<Operation &>(kernel.operation(OperationId(1)))
        .operands[1] = Operand::fromValue(
        kernel.operation(OperationId(1)).result, 1);
    const_cast<Value &>(
        kernel.value(kernel.operation(OperationId(1)).result))
        .uses.emplace_back(OperationId(1), 1);
    (void)y;
    Machine machine = makeCentral();
    BlockScheduler tight(kernel, BlockId(0), machine,
                         SchedulerOptions{}, 2);
    ScheduleResult fail = tight.run();
    EXPECT_FALSE(fail.success);
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(0), machine);
    EXPECT_TRUE(pipe.success);
    EXPECT_EQ(pipe.ii, machine.latency(Opcode::FDiv));
}

} // namespace
} // namespace cs
