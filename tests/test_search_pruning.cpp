/**
 * @file
 * Toggle-equivalence for the failure-learning layer (DESIGN.md §5d):
 * the no-good cache, conflict-directed backjumping and cross-attempt
 * no-good reuse are exact accelerations — turning any of them off may
 * change wall time, never a schedule. Seeded random kernels scheduled
 * on every standard machine must produce byte-identical canonical
 * listings and identical budget-exhaustion outcomes with pruning
 * forced off versus on, for plain blocks and for the pipelined sweep
 * (which exercises the cross-attempt exchange). CS_TEST_SEED
 * overrides the seed list with a single seed for reproduction.
 *
 * The golden-listing suite (test_sched_equivalence.cpp) pins all 80
 * fingerprints with the default options — pruning on — so this file
 * only needs to hold the off-vs-on direction.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "core/nogood.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "machine/builders.hpp"
#include "support/random.hpp"

namespace cs {
namespace {

/** Random DAG kernel over earlier results (test_property.cpp shape). */
Kernel
randomKernel(std::uint64_t seed, int numOps, bool carried)
{
    Rng rng(seed);
    KernelBuilder b("prune" + std::to_string(seed));
    b.block("loop", true);
    std::vector<Val> values;
    values.push_back(b.load(1000, 1, "in0"));
    values.push_back(b.load(2000, 1, "in1"));

    auto pick = [&]() -> Val {
        return values[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(values.size()) - 1))];
    };

    for (int i = 0; i < numOps; ++i) {
        int kind = static_cast<int>(rng.uniformInt(0, 9));
        Val a = pick();
        Val b2 = pick();
        Val out;
        switch (kind) {
          case 0: out = b.iadd(a, b2); break;
          case 1: out = b.isub(a, b2); break;
          case 2: out = b.imin(a, b2); break;
          case 3: out = b.imax(a, b2); break;
          case 4: out = b.ixor(a, b2); break;
          case 5: out = b.imul(a, b2); break;
          case 6: out = b.iand(a, b2); break;
          case 7: out = b.iadd(a, rng.uniformInt(-9, 9)); break;
          case 8:
            if (carried) {
                out = b.iadd(
                    a.at(static_cast<int>(rng.uniformInt(1, 3))), b2);
            } else {
                out = b.ior(a, b2);
            }
            break;
          default: out = b.load(3000 + i, 1); break;
        }
        values.push_back(out);
    }
    b.store(5000, values.back(), 1);
    b.store(6000, values[values.size() / 2], 1);
    return b.take();
}

std::vector<std::uint64_t>
testSeeds()
{
    if (const char *env = std::getenv("CS_TEST_SEED"))
        return {std::strtoull(env, nullptr, 10)};
    return {11, 47, 2026};
}

std::vector<Machine>
standardMachines()
{
    std::vector<Machine> machines;
    machines.push_back(makeCentral());
    machines.push_back(makeClustered({}, 2));
    machines.push_back(makeClustered({}, 4));
    machines.push_back(makeDistributed());
    return machines;
}

SchedulerOptions
withPruning(bool noGood, bool backjump, bool crossAttempt)
{
    SchedulerOptions options;
    options.noGoodCache = noGood;
    options.conflictBackjumping = backjump;
    options.crossAttemptNoGoods = crossAttempt;
    return options;
}

/** The off/partial configurations compared against all-on. */
std::vector<SchedulerOptions>
ablations()
{
    return {
        withPruning(false, false, false), // everything off
        withPruning(true, false, false),  // cache only
        withPruning(false, true, false),  // backjumping only
    };
}

TEST(SearchPruning, BlockListingsIdenticalOffVsOn)
{
    SchedulerOptions reference = withPruning(true, true, true);
    for (std::uint64_t seed : testSeeds()) {
        Kernel kernel = randomKernel(seed, 20, false);
        ASSERT_TRUE(verifyKernel(kernel).empty());
        for (const Machine &machine : standardMachines()) {
            ScheduleResult on =
                scheduleBlock(kernel, BlockId(0), machine, reference);
            std::string on_listing =
                on.success ? exportListing(on.kernel, machine,
                                           on.schedule)
                           : "";
            for (const SchedulerOptions &ablated : ablations()) {
                ScheduleResult off = scheduleBlock(kernel, BlockId(0),
                                                   machine, ablated);
                ASSERT_EQ(on.success, off.success)
                    << "seed " << seed << " on " << machine.name();
                if (!on.success)
                    continue;
                EXPECT_EQ(on_listing,
                          exportListing(off.kernel, machine,
                                        off.schedule))
                    << "seed " << seed << " on " << machine.name();
                EXPECT_EQ(on.stats.get("attempt_budget_exhausted"),
                          off.stats.get("attempt_budget_exhausted"))
                    << "seed " << seed << " on " << machine.name();
                EXPECT_EQ(on.stats.get("placement_attempts"),
                          off.stats.get("placement_attempts"))
                    << "seed " << seed << " on " << machine.name();
            }
        }
    }
}

TEST(SearchPruning, PipelinedListingsIdenticalOffVsOn)
{
    // Carried kernels through the modulo sweep: the II search seeds
    // each attempt from the cross-attempt exchange, so this covers
    // no-good migration between attempts, not just within one run.
    SchedulerOptions reference = withPruning(true, true, true);
    for (std::uint64_t seed : testSeeds()) {
        Kernel kernel = randomKernel(seed, 12, true);
        ASSERT_TRUE(verifyKernel(kernel).empty());
        for (const Machine &machine : standardMachines()) {
            PipelineResult on = schedulePipelined(kernel, BlockId(0),
                                                  machine, reference);
            for (const SchedulerOptions &ablated : ablations()) {
                PipelineResult off = schedulePipelined(
                    kernel, BlockId(0), machine, ablated);
                ASSERT_EQ(on.success, off.success)
                    << "seed " << seed << " on " << machine.name();
                if (!on.success)
                    continue;
                EXPECT_EQ(on.ii, off.ii)
                    << "seed " << seed << " on " << machine.name();
                EXPECT_EQ(on.attempts, off.attempts)
                    << "seed " << seed << " on " << machine.name();
                EXPECT_EQ(exportListing(on.inner.kernel, machine,
                                        on.inner.schedule),
                          exportListing(off.inner.kernel, machine,
                                        off.inner.schedule))
                    << "seed " << seed << " on " << machine.name();
            }
        }
    }
}

TEST(SearchPruning, BudgetExhaustionOutcomesIdentical)
{
    // Starve the search so budget-exhaustion paths actually fire; the
    // budget is charged at identical points with pruning on or off,
    // so the outcome — success flag, failure kind, exhaustion
    // counters — must match exactly.
    for (std::uint64_t seed : testSeeds()) {
        Kernel kernel = randomKernel(seed, 20, false);
        Machine machine = makeDistributed();
        SchedulerOptions on = withPruning(true, true, true);
        on.perOpAttemptBudget = 40;
        on.permutationBudget = 60;
        on.copyAttemptBudget = 10;
        SchedulerOptions off = on;
        off.noGoodCache = false;
        off.conflictBackjumping = false;
        off.crossAttemptNoGoods = false;

        ScheduleResult a = scheduleBlock(kernel, BlockId(0), machine,
                                         on);
        ScheduleResult b = scheduleBlock(kernel, BlockId(0), machine,
                                         off);
        ASSERT_EQ(a.success, b.success) << "seed " << seed;
        EXPECT_EQ(a.stats.get("attempt_budget_exhausted"),
                  b.stats.get("attempt_budget_exhausted"))
            << "seed " << seed;
        EXPECT_EQ(a.stats.get("perm_budget_exhausted"),
                  b.stats.get("perm_budget_exhausted"))
            << "seed " << seed;
        if (a.success) {
            EXPECT_EQ(exportListing(a.kernel, machine, a.schedule),
                      exportListing(b.kernel, machine, b.schedule))
                << "seed " << seed;
        } else {
            EXPECT_EQ(a.failure, b.failure) << "seed " << seed;
        }
    }
}

TEST(NoGoodTableTest, InsertContainsAndDedup)
{
    NoGoodTable table;
    EXPECT_FALSE(table.contains(42));
    EXPECT_TRUE(table.insert(42));
    EXPECT_TRUE(table.contains(42));
    EXPECT_FALSE(table.insert(42)); // duplicate
    EXPECT_EQ(table.size(), 1u);

    // A zero signature is remapped, not confused with empty slots.
    EXPECT_FALSE(table.contains(0));
    EXPECT_TRUE(table.insert(0));
    EXPECT_TRUE(table.contains(0));
    EXPECT_FALSE(table.insert(0));
}

TEST(NoGoodTableTest, GrowthKeepsEveryEntry)
{
    NoGoodTable table;
    Rng rng(7);
    std::vector<std::uint64_t> sigs;
    for (int i = 0; i < 5000; ++i)
        sigs.push_back(static_cast<std::uint64_t>(
                           rng.uniformInt(1, (1LL << 62))) |
                       (static_cast<std::uint64_t>(i) << 1));
    for (std::uint64_t sig : sigs)
        table.insert(sig);
    for (std::uint64_t sig : sigs)
        EXPECT_TRUE(table.contains(sig));
    EXPECT_EQ(table.evictions(), 0u);
}

TEST(NoGoodTableTest, ClearEmptiesTheTable)
{
    NoGoodTable table;
    table.insert(1);
    table.insert(2);
    table.clear();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_FALSE(table.contains(1));
    EXPECT_FALSE(table.contains(2));
}

TEST(NoGoodExchangeTest, PublishSnapshotAndDedup)
{
    NoGoodExchange exchange;
    exchange.publish({10, 20, 30});
    exchange.publish({20, 40}); // 20 deduplicated
    EXPECT_EQ(exchange.size(), 4u);

    std::vector<std::uint64_t> snap;
    exchange.snapshotInto(snap);
    ASSERT_EQ(snap.size(), 4u);
    // Publication order is preserved (snapshots seed deterministic
    // table fills).
    EXPECT_EQ(snap[0], 10u);
    EXPECT_EQ(snap[1], 20u);
    EXPECT_EQ(snap[2], 30u);
    EXPECT_EQ(snap[3], 40u);
}

TEST(SearchPruning, DefaultOptionsEnableAllPruning)
{
    // The golden fingerprints are pinned with the defaults; this
    // guards that the defaults actually exercise the pruning layer.
    SchedulerOptions defaults;
    EXPECT_TRUE(defaults.noGoodCache);
    EXPECT_TRUE(defaults.conflictBackjumping);
    EXPECT_TRUE(defaults.crossAttemptNoGoods);
}

} // namespace
} // namespace cs
