/**
 * @file
 * Serialization suite (DESIGN.md §5f): text and binary round-trips for
 * every Table-1 kernel and all four evaluation machines, golden-listing
 * byte-equivalence for schedules computed from *parsed* descriptions,
 * the scheduled-kernel round trip (copy-chain forward references), and
 * malformed-input fuzzing — truncations and random mutations of valid
 * documents must fail cleanly, never crash.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "ir/serialize.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "machine/serialize.hpp"
#include "serve/proto.hpp"
#include "support/logging.hpp"
#include "support/wire.hpp"

#ifndef CS_TEST_DATA_DIR
#define CS_TEST_DATA_DIR "."
#endif

namespace cs {
namespace {

Machine
machineByName(const std::string &name)
{
    if (name == "central")
        return makeCentral();
    if (name == "clustered2")
        return makeClustered({}, 2);
    if (name == "clustered4")
        return makeClustered({}, 4);
    CS_ASSERT(name == "distributed", "unknown machine ", name);
    return makeDistributed();
}

const char *const kMachineNames[] = {"central", "clustered2",
                                     "clustered4", "distributed"};

std::vector<std::uint8_t>
machineBytes(const Machine &machine)
{
    std::vector<std::uint8_t> bytes;
    wire::ByteWriter writer(bytes);
    encodeMachine(writer, machine);
    return bytes;
}

std::vector<std::uint8_t>
kernelBytes(const Kernel &kernel)
{
    std::vector<std::uint8_t> bytes;
    wire::ByteWriter writer(bytes);
    encodeKernel(writer, kernel);
    return bytes;
}

// ---------------------------------------------------------------------
// Round trips: text and binary, every machine and every kernel
// ---------------------------------------------------------------------

TEST(SerializeMachine, TextRoundTripsAllEvaluationMachines)
{
    for (const char *name : kMachineNames) {
        SCOPED_TRACE(name);
        Machine machine = machineByName(name);
        std::string text = printMachineToString(machine);

        std::optional<Machine> parsed;
        std::string error;
        ASSERT_TRUE(parseMachineText(text, &parsed, &error)) << error;
        // Fixed point: re-printing the parsed machine reproduces the
        // document byte for byte, and the binary encodings agree (the
        // strongest structural-equality check we have).
        EXPECT_EQ(printMachineToString(*parsed), text);
        EXPECT_EQ(machineBytes(*parsed), machineBytes(machine));
    }
}

TEST(SerializeMachine, BinaryRoundTripsAllEvaluationMachines)
{
    for (const char *name : kMachineNames) {
        SCOPED_TRACE(name);
        Machine machine = machineByName(name);
        std::vector<std::uint8_t> bytes = machineBytes(machine);

        wire::ByteReader reader(bytes);
        std::optional<Machine> decoded;
        ASSERT_TRUE(decodeMachine(reader, &decoded)) << reader.error();
        EXPECT_TRUE(reader.atEnd());
        EXPECT_EQ(machineBytes(*decoded), bytes);
        EXPECT_EQ(printMachineToString(*decoded),
                  printMachineToString(machine));
    }
}

TEST(SerializeKernel, TextRoundTripsAllTableOneKernels)
{
    for (const KernelSpec &spec : allKernels()) {
        SCOPED_TRACE(spec.name);
        Kernel kernel = spec.build();
        std::string text = printKernelToString(kernel);

        std::optional<Kernel> parsed;
        std::string error;
        ASSERT_TRUE(parseKernelText(text, &parsed, &error)) << error;
        EXPECT_EQ(printKernelToString(*parsed), text);
        EXPECT_EQ(kernelBytes(*parsed), kernelBytes(kernel));
    }
}

TEST(SerializeKernel, BinaryRoundTripsAllTableOneKernels)
{
    for (const KernelSpec &spec : allKernels()) {
        SCOPED_TRACE(spec.name);
        Kernel kernel = spec.build();
        std::vector<std::uint8_t> bytes = kernelBytes(kernel);

        wire::ByteReader reader(bytes);
        std::optional<Kernel> decoded;
        ASSERT_TRUE(decodeKernel(reader, &decoded)) << reader.error();
        EXPECT_TRUE(reader.atEnd());
        EXPECT_EQ(kernelBytes(*decoded), bytes);
    }
}

TEST(SerializeKernel, BinaryRoundTripsScheduledKernelWithCopies)
{
    // The distributed machine forces inserted copies; copy insertion
    // retargets consumers to copy results with *higher* value ids, so
    // the encoded kernel contains forward references that only the
    // copy-chain rule of the decoder can accept. This is the exact
    // shape every persistent-cache record has.
    setVerboseLogging(false);
    Machine machine = makeDistributed();
    Kernel kernel = kernelByName("FIR-INT").build();
    ScheduleResult result = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success);

    std::vector<std::uint8_t> bytes = kernelBytes(result.kernel);
    wire::ByteReader reader(bytes);
    std::optional<Kernel> decoded;
    ASSERT_TRUE(decodeKernel(reader, &decoded)) << reader.error();
    // Identical ids, operands, and block order: the re-encoding and
    // the exported listing are byte-identical.
    EXPECT_EQ(kernelBytes(*decoded), bytes);
    EXPECT_EQ(exportListing(*decoded, machine, result.schedule),
              exportListing(result.kernel, machine, result.schedule));
}

TEST(SerializeJobSet, TextAndBinaryRoundTrip)
{
    serve::JobSet set;
    set.machines.push_back(makeCentral());
    set.machines.push_back(makeDistributed());
    set.kernels.push_back(kernelByName("DCT").build());
    set.kernels.push_back(kernelByName("FIR-INT").build());
    set.kernels.push_back(kernelByName("FFT-U4").build());

    for (std::uint32_t m = 0; m < 2; ++m) {
        for (std::uint32_t k = 0; k < 3; ++k) {
            serve::JobDescription job;
            job.label = "job m" + std::to_string(m) + " k\"quoted\"" +
                        std::to_string(k);
            job.machineIndex = m;
            job.kernelIndex = k;
            job.pipelined = (k % 2) == 0;
            job.maxIiSlack = 8 + static_cast<int>(k);
            job.options.maxDelay = 1024 + static_cast<int>(m);
            job.options.permutationBudget += static_cast<int>(k);
            set.jobs.push_back(std::move(job));
        }
    }

    std::string text = serve::printJobSetToString(set);
    std::optional<serve::JobSet> parsed;
    std::string error;
    ASSERT_TRUE(serve::parseJobSetText(text, &parsed, &error)) << error;
    EXPECT_EQ(serve::printJobSetToString(*parsed), text);
    ASSERT_EQ(parsed->jobs.size(), set.jobs.size());
    EXPECT_EQ(parsed->jobs[4].label, set.jobs[4].label);
    EXPECT_EQ(parsed->jobs[4].pipelined, set.jobs[4].pipelined);
    EXPECT_EQ(parsed->jobs[4].options.maxDelay,
              set.jobs[4].options.maxDelay);

    std::vector<std::uint8_t> bytes;
    wire::ByteWriter writer(bytes);
    serve::encodeJobSet(writer, set);
    wire::ByteReader reader(bytes);
    std::optional<serve::JobSet> decoded;
    ASSERT_TRUE(serve::decodeJobSet(reader, &decoded))
        << reader.error();
    EXPECT_TRUE(reader.atEnd());
    EXPECT_EQ(serve::printJobSetToString(*decoded), text);
}

TEST(SerializeJobSet, CrossReferencesValidated)
{
    serve::JobSet set;
    set.machines.push_back(makeCentral());
    set.kernels.push_back(kernelByName("DCT").build());
    serve::JobDescription job;
    job.machineIndex = 7; // dangling
    set.jobs.push_back(job);

    std::string text = serve::printJobSetToString(set);
    std::optional<serve::JobSet> parsed;
    std::string error;
    EXPECT_FALSE(serve::parseJobSetText(text, &parsed, &error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// Golden-listing equivalence from parsed descriptions
// ---------------------------------------------------------------------

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t state = 14695981039346656037ull;
    for (unsigned char c : data) {
        state ^= c;
        state *= 1099511628211ull;
    }
    return state;
}

struct GoldenRecord
{
    int ii = 0;
    std::size_t bytes = 0;
    std::uint64_t hash = 0;
};

/** The committed fingerprints of tests/golden_listings.txt, keyed
 *  "kernel|machine|mode" exactly as in test_sched_equivalence.cpp. */
const std::map<std::string, GoldenRecord> &
goldenTable()
{
    static const std::map<std::string, GoldenRecord> table = [] {
        std::map<std::string, GoldenRecord> out;
        std::ifstream in(std::string(CS_TEST_DATA_DIR) +
                         "/golden_listings.txt");
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::istringstream fields(line);
            std::string key;
            GoldenRecord record;
            fields >> key >> record.ii >> record.bytes >> std::hex >>
                record.hash >> std::dec;
            if (!key.empty())
                out[key] = record;
        }
        return out;
    }();
    return table;
}

std::string
goldenKey(const std::string &kernelName, const std::string &machineName,
          bool pipelined)
{
    std::string kernelKey = kernelName;
    for (char &c : kernelKey) {
        if (c == ' ')
            c = '_';
    }
    return kernelKey + "|" + machineName + "|" +
           (pipelined ? "modulo" : "block");
}

void
expectGolden(const std::string &key, int ii, const std::string &listing)
{
    auto it = goldenTable().find(key);
    ASSERT_NE(it, goldenTable().end()) << "no golden for " << key;
    EXPECT_EQ(ii, it->second.ii) << key;
    EXPECT_EQ(listing.size(), it->second.bytes) << key;
    EXPECT_EQ(fnv1a(listing), it->second.hash)
        << key << ": schedule from parsed description diverged from "
                  "the in-process builders";
}

/** Round-trip the machine and every kernel through the *text* format,
 *  schedule from the parsed descriptions only, and compare against the
 *  committed golden fingerprints (which were captured from in-process
 *  builders) — the end-to-end byte-equivalence contract a jobs file
 *  relies on. */
class SerializeParsedGolden
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(SerializeParsedGolden, BlockListingsMatchGoldens)
{
    setVerboseLogging(false);
    const std::string machineName = GetParam();

    std::optional<Machine> machine;
    std::string error;
    ASSERT_TRUE(parseMachineText(
        printMachineToString(machineByName(machineName)), &machine,
        &error))
        << error;

    for (const KernelSpec &spec : allKernels()) {
        SCOPED_TRACE(spec.name);
        std::optional<Kernel> kernel;
        ASSERT_TRUE(parseKernelText(printKernelToString(spec.build()),
                                    &kernel, &error))
            << error;
        ScheduleResult result =
            scheduleBlock(*kernel, BlockId(0), *machine);
        ASSERT_TRUE(result.success);
        expectGolden(goldenKey(spec.name, machineName, false), 0,
                     exportListing(result.kernel, *machine,
                                   result.schedule));
    }
}

INSTANTIATE_TEST_SUITE_P(AllMachines, SerializeParsedGolden,
                         ::testing::Values("central", "clustered2",
                                           "clustered4", "distributed"),
                         [](const auto &info) { return info.param; });

TEST(SerializeParsedGoldenModulo, CentralListingsMatchGoldens)
{
    // One modulo sample keeps the parsed-description contract covered
    // on the software-pipelined path without repeating the full perf
    // sweep (SchedEquivalence owns that).
    setVerboseLogging(false);
    std::optional<Machine> machine;
    std::string error;
    ASSERT_TRUE(parseMachineText(printMachineToString(makeCentral()),
                                 &machine, &error))
        << error;

    for (const char *name : {"DCT", "FIR-INT", "FFT-U4"}) {
        SCOPED_TRACE(name);
        std::optional<Kernel> kernel;
        ASSERT_TRUE(parseKernelText(
            printKernelToString(kernelByName(name).build()), &kernel,
            &error))
            << error;
        PipelineResult result =
            schedulePipelined(*kernel, BlockId(0), *machine);
        ASSERT_TRUE(result.success);
        expectGolden(goldenKey(name, "central", true), result.ii,
                     exportListing(result.inner.kernel, *machine,
                                   result.inner.schedule));
    }
}

// ---------------------------------------------------------------------
// Malformed-input fuzzing: fail cleanly, never crash
// ---------------------------------------------------------------------

/** Evenly spaced prefix lengths, always including the empty and the
 *  almost-complete document. */
std::vector<std::size_t>
prefixLengths(std::size_t size, std::size_t samples)
{
    std::vector<std::size_t> lengths;
    for (std::size_t i = 0; i < samples; ++i)
        lengths.push_back(size * i / samples);
    if (size > 0)
        lengths.push_back(size - 1);
    return lengths;
}

TEST(SerializeFuzz, TruncatedTextFailsCleanly)
{
    serve::JobSet set;
    set.machines.push_back(makeCentral());
    set.kernels.push_back(kernelByName("DCT").build());
    serve::JobDescription job;
    set.jobs.push_back(job);

    const std::string docs[] = {
        printMachineToString(set.machines[0]),
        printKernelToString(set.kernels[0]),
        serve::printJobSetToString(set),
    };
    for (const std::string &doc : docs) {
        // Stop short of doc.size() - 1: stripping only the trailing
        // newline leaves a complete document, which parses fine.
        for (std::size_t length : prefixLengths(doc.size() - 1, 64)) {
            std::string truncated = doc.substr(0, length);
            std::string error;
            std::optional<Machine> machine;
            std::optional<Kernel> kernel;
            std::optional<serve::JobSet> jobs;
            // A strict prefix can never be a complete document, so
            // every parse must fail — with a diagnostic, not a crash.
            EXPECT_FALSE(
                parseMachineText(truncated, &machine, &error));
            EXPECT_FALSE(parseKernelText(truncated, &kernel, &error));
            EXPECT_FALSE(
                serve::parseJobSetText(truncated, &jobs, &error));
        }
    }
}

TEST(SerializeFuzz, MutatedTextNeverCrashes)
{
    const std::string doc =
        printKernelToString(kernelByName("FIR-INT").build());
    std::mt19937 rng(0xC0FFEE);
    std::uniform_int_distribution<std::size_t> pos(0, doc.size() - 1);
    std::uniform_int_distribution<int> ch(32, 126);
    for (int round = 0; round < 200; ++round) {
        std::string mutated = doc;
        int edits = 1 + round % 8;
        for (int e = 0; e < edits; ++e)
            mutated[pos(rng)] = static_cast<char>(ch(rng));
        std::optional<Kernel> kernel;
        std::string error;
        if (!parseKernelText(mutated, &kernel, &error))
            EXPECT_FALSE(error.empty());
    }
}

TEST(SerializeFuzz, MutatedNumbersRejectedInRange)
{
    // Splice hostile magnitudes into every integer slot of a valid
    // document: the parser must bound-check before any builder call.
    const std::string doc =
        printKernelToString(kernelByName("DCT").build());
    const char *bombs[] = {"99999999999999999999", "4294967295",
                           "-1", "1048577"};
    for (const char *bomb : bombs) {
        std::string mutated;
        bool inNumber = false;
        for (char c : doc) {
            bool digit = c >= '0' && c <= '9';
            if (digit && !inNumber) {
                mutated += bomb;
                inNumber = true;
            } else if (!digit) {
                inNumber = false;
            }
            if (!digit)
                mutated += c;
        }
        std::optional<Kernel> kernel;
        std::string error;
        EXPECT_FALSE(parseKernelText(mutated, &kernel, &error));
        EXPECT_FALSE(error.empty());
    }
}

TEST(SerializeFuzz, TruncatedAndFlippedBinaryNeverCrashes)
{
    serve::JobSet set;
    set.machines.push_back(makeCentral());
    set.kernels.push_back(kernelByName("FFT-U4").build());
    serve::JobDescription job;
    set.jobs.push_back(job);
    std::vector<std::uint8_t> bytes;
    wire::ByteWriter writer(bytes);
    serve::encodeJobSet(writer, set);

    auto tryDecode = [](const std::vector<std::uint8_t> &data) {
        wire::ByteReader reader(data);
        std::optional<serve::JobSet> out;
        if (!serve::decodeJobSet(reader, &out))
            EXPECT_FALSE(reader.error().empty());
    };

    for (std::size_t length : prefixLengths(bytes.size(), 128)) {
        tryDecode(std::vector<std::uint8_t>(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(
                                                    length)));
    }

    std::mt19937 rng(0xFEED);
    std::uniform_int_distribution<std::size_t> pos(0, bytes.size() - 1);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int round = 0; round < 500; ++round) {
        std::vector<std::uint8_t> mutated = bytes;
        int edits = 1 + round % 4;
        for (int e = 0; e < edits; ++e)
            mutated[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
        tryDecode(mutated);
    }
}

TEST(SerializeFuzz, MalformedRequestsAndResponsesNeverCrash)
{
    serve::Request request;
    request.type = serve::RequestType::Schedule;
    request.requestId = 42;
    request.jobs.machines.push_back(makeCentral());
    request.jobs.kernels.push_back(kernelByName("DCT").build());
    request.jobs.jobs.emplace_back();
    std::vector<std::uint8_t> bytes;
    wire::ByteWriter writer(bytes);
    serve::encodeRequest(writer, request);

    std::mt19937 rng(0xBEEF);
    std::uniform_int_distribution<std::size_t> pos(0, bytes.size() - 1);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int round = 0; round < 300; ++round) {
        std::vector<std::uint8_t> mutated = bytes;
        mutated[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
        wire::ByteReader reader(mutated);
        serve::Request out;
        (void)serve::decodeRequest(reader, &out);
        wire::ByteReader asResponse(mutated);
        serve::Response response;
        (void)serve::decodeResponse(asResponse, &response);
    }

    // Round trip sanity on the untouched bytes.
    wire::ByteReader reader(bytes);
    serve::Request out;
    ASSERT_TRUE(serve::decodeRequest(reader, &out)) << reader.error();
    EXPECT_EQ(out.requestId, 42u);
    EXPECT_EQ(out.type, serve::RequestType::Schedule);
    ASSERT_EQ(out.jobs.jobs.size(), 1u);
}

} // namespace
} // namespace cs
