/**
 * @file
 * cs_serve end-to-end suite, run against an in-process ScheduleServer
 * on a per-test Unix-domain socket: request/response round trips,
 * byte-equivalence of served listings against in-process scheduling,
 * many concurrent clients (the TSan build pins the accept/dispatch/
 * respond paths), admission-control rejection, the already-expired
 * deadline fast path, deadline preemption of a long job, hostile
 * frames, and graceful drain/restart.
 *
 * The ServeTcp tests mirror the hostile/overload/deadline/drain
 * coverage over the TCP listener (plus a version-mismatch frame), the
 * flock test runs two daemons against one shared cache directory, the
 * fast-path test pins byte-identity of reader-thread warm hits against
 * pipeline-dispatched responses, and ServeSoak (perf label, not tier1)
 * is a short open-loop soak with connection + cache churn and deadline
 * pressure — CS_SOAK_MS stretches it to a real soak.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/logging.hpp"
#include "support/telemetry.hpp"

namespace cs {
namespace {

/** Short unique socket path (sun_path is ~108 bytes; TempDir can be
 *  long, so sockets live in /tmp). */
std::string
testSocketPath(const char *tag)
{
    return "/tmp/cs_test_" + std::to_string(::getpid()) + "_" + tag +
           ".sock";
}

/** A one-job set: @p kernelName on the central machine, block mode. */
serve::JobSet
oneJobSet(const std::string &kernelName, int maxDelay = 2048)
{
    serve::JobSet set;
    set.machines.push_back(makeCentral());
    set.kernels.push_back(kernelByName(kernelName).build());
    serve::JobDescription job;
    job.label = kernelName;
    job.pipelined = false;
    job.options.maxDelay = maxDelay;
    set.jobs.push_back(std::move(job));
    return set;
}

/** The listing the server must reproduce byte for byte. */
std::string
localListing(const serve::JobSet &set)
{
    Kernel kernel = set.kernels[0];
    ScheduleResult result = scheduleBlock(
        kernel, BlockId(0), set.machines[0], set.jobs[0].options);
    CS_ASSERT(result.success, "local schedule failed");
    return exportListing(result.kernel, set.machines[0],
                         result.schedule);
}

serve::ServerConfig
baseConfig(const std::string &socketPath)
{
    serve::ServerConfig config;
    config.socketPath = socketPath;
    config.workerThreads = 2;
    config.cacheCapacity = 256;
    return config;
}

/** TCP-only config on an ephemeral loopback port. */
serve::ServerConfig
tcpConfig()
{
    serve::ServerConfig config;
    config.listenTcp = "127.0.0.1:0";
    config.workerThreads = 2;
    config.cacheCapacity = 256;
    return config;
}

std::string
tcpAddress(const serve::ScheduleServer &server)
{
    return "127.0.0.1:" + std::to_string(server.boundTcpPort());
}

/** Raw loopback TCP connect (for hostile-frame tests). */
int
rawConnectTcp(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = inet_addr("127.0.0.1");
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    return fd;
}

/** Fresh empty cache directory under the test temp root. */
std::string
freshCacheDir(const std::string &name)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

TEST(Serve, PingStatsAndScheduleRoundTrip)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("roundtrip"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    EXPECT_TRUE(client.ping(&error)) << error;

    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    ASSERT_EQ(response.status, serve::ResponseStatus::Ok)
        << response.message;
    EXPECT_TRUE(response.success);
    EXPECT_FALSE(response.cacheHit);
    EXPECT_TRUE(response.verifierErrors.empty());
    EXPECT_EQ(response.listing, localListing(set));

    // The identical request is served from the cache, byte-identical.
    serve::Response second;
    ASSERT_TRUE(client.schedule(set, 0, &second, &error)) << error;
    ASSERT_EQ(second.status, serve::ResponseStatus::Ok);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.listing, response.listing);

    std::string statsJson;
    ASSERT_TRUE(client.stats(&statsJson, &error)) << error;
    EXPECT_NE(statsJson.find("\"serve\""), std::string::npos);
    EXPECT_NE(statsJson.find("\"pipeline\""), std::string::npos);
    EXPECT_NE(statsJson.find("\"cache\""), std::string::npos);
    EXPECT_EQ(server.metrics().counters().get("serve.ok"), 2u);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(Serve, ConcurrentClientsGetByteIdenticalListings)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("concurrent"));
    config.maxInFlight = 64;
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    // Four distinct jobs; every thread requests each of them, so the
    // server multiplexes 16 connections x 4 in-flight requests over
    // scheduling work and cache hits at once.
    const char *names[] = {"DCT", "FFT-U4", "FIR-INT",
                           "Triangle Transform"};
    std::vector<serve::JobSet> sets;
    std::vector<std::string> expected;
    for (const char *name : names) {
        sets.push_back(oneJobSet(name));
        expected.push_back(localListing(sets.back()));
    }

    constexpr int kThreads = 16;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            serve::ScheduleClient client;
            std::string error;
            if (!client.connect(server.socketPath(), &error)) {
                ++failures;
                return;
            }
            for (std::size_t j = 0; j < sets.size(); ++j) {
                std::size_t job = (j + static_cast<std::size_t>(t)) %
                                  sets.size();
                serve::Response response;
                if (!client.schedule(sets[job], 0, &response,
                                     &error) ||
                    response.status != serve::ResponseStatus::Ok ||
                    response.listing != expected[job])
                    ++failures;
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.metrics().counters().get("serve.ok"),
              static_cast<std::uint64_t>(kThreads) * sets.size());
    EXPECT_EQ(server.metrics().counters().get("serve.rejected_overload"),
              0u);
    server.stop();
}

TEST(Serve, OverloadRejectedWhenAdmissionFull)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("overload"));
    config.maxInFlight = 0; // every Schedule request is over the bound
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::RejectedOverload);
    EXPECT_TRUE(response.listing.empty());
    // Rejection is backpressure, not a dead server: pings still work.
    EXPECT_TRUE(client.ping(&error)) << error;
    EXPECT_GE(server.metrics().counters().get("serve.rejected_overload"),
              1u);
    server.stop();
}

TEST(Serve, ExpiredDeadlineAnsweredWithoutScheduling)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("deadline"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, -1, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::DeadlineExceeded);
    EXPECT_TRUE(response.listing.empty());
    // The fast path answers before any scheduling work happens.
    EXPECT_EQ(server.pipeline().statsSnapshot().get("ops_scheduled"),
              0u);
    EXPECT_GE(server.metrics().counters().get("serve.deadline_expired"),
              1u);
    server.stop();
}

TEST(Serve, DeadlinePreemptsLongJob)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("preempt"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    // Sort pipelined on the distributed machine takes seconds; a 1 ms
    // budget must preempt it at a scheduler checkpoint long before it
    // completes.
    serve::JobSet set;
    set.machines.push_back(makeDistributed());
    set.kernels.push_back(kernelByName("Sort").build());
    serve::JobDescription job;
    job.label = "Sort";
    job.pipelined = true;
    set.jobs.push_back(std::move(job));

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 1, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::DeadlineExceeded);
    EXPECT_GE(
        server.metrics().counters().get("serve.deadline_preempted"),
        1u);

    // A cancelled result is never cached: re-running with no deadline
    // must schedule anew (and is free to succeed or exhaust slack; it
    // must not be a replayed cancellation). Use a cheap job instead of
    // re-paying Sort: the cache must simply not contain the key.
    EXPECT_EQ(server.pipeline().cache().stats().entries, 0u);
    server.stop();
}

TEST(Serve, HostileFramesDoNotKillTheServer)
{
    setVerboseLogging(false);
    serve::ServerConfig config = baseConfig(testSocketPath("hostile"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    auto rawConnect = [&]() {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, config.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0);
        return fd;
    };

    // A well-framed garbage payload: the server answers BadRequest (or
    // drops the connection) but keeps serving.
    {
        int fd = rawConnect();
        std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef,
                                             0x00, 0x01, 0x02};
        ASSERT_TRUE(serve::writeFrame(fd, garbage));
        std::vector<std::uint8_t> reply;
        (void)serve::readFrame(fd, &reply);
        ::close(fd);
    }

    // A hostile length prefix (4 GiB): the server must refuse to
    // allocate and close the connection.
    {
        int fd = rawConnect();
        const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
        EXPECT_EQ(::write(fd, huge, sizeof huge), 4);
        std::vector<std::uint8_t> reply;
        EXPECT_FALSE(serve::readFrame(fd, &reply));
        ::close(fd);
    }

    // Truncated frame then hangup: reader sees a short read, cleans up.
    {
        int fd = rawConnect();
        const std::uint8_t shortFrame[6] = {0x40, 0x00, 0x00, 0x00,
                                            0x01, 0x02};
        EXPECT_EQ(::write(fd, shortFrame, sizeof shortFrame), 6);
        ::close(fd);
    }

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    EXPECT_TRUE(client.ping(&error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
    server.stop();
}

TEST(Serve, GracefulDrainCompletesInFlightWork)
{
    setVerboseLogging(false);
    serve::ServerConfig config = baseConfig(testSocketPath("drain"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::JobSet set = oneJobSet("FFT-U4");
    std::string expected = localListing(set);
    serve::Response response;
    std::string error;
    bool ok = false;
    std::thread requester([&] {
        serve::ScheduleClient client;
        if (client.connect(server.socketPath(), &error))
            ok = client.schedule(set, 0, &response, &error);
    });
    // Begin draining only once the server has admitted the request,
    // so stop() really does race a job in flight: it must wait for
    // the job to finish and its response to be written before tearing
    // the connection down.
    auto waitStart = std::chrono::steady_clock::now();
    while (server.metrics().counters().get("serve.schedule_requests") <
               1 &&
           std::chrono::steady_clock::now() - waitStart <
               std::chrono::seconds(10))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.stop();
    requester.join();

    ASSERT_TRUE(ok) << error;
    if (response.status == serve::ResponseStatus::Ok) {
        // The common case: the job was admitted before the drain began
        // and stop() completed it.
        EXPECT_EQ(response.listing, expected);
    } else {
        // Rare on a loaded single-core box: the reader thread was
        // preempted between counting the request and admitting it, so
        // the drain won the race and bounced it. Still a clean drain.
        EXPECT_EQ(response.status,
                  serve::ResponseStatus::ShuttingDown);
    }
    EXPECT_FALSE(server.running());

    // The socket file is unlinked; new connections fail cleanly.
    serve::ScheduleClient late;
    EXPECT_FALSE(late.connect(config.socketPath, &error));
}

TEST(Serve, RestartOnSamePathAfterStop)
{
    setVerboseLogging(false);
    std::string path = testSocketPath("restart");
    {
        serve::ScheduleServer server(baseConfig(path));
        ASSERT_TRUE(server.start());
        server.stop();
    }
    serve::ScheduleServer second(baseConfig(path));
    ASSERT_TRUE(second.start());
    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(path, &error)) << error;
    EXPECT_TRUE(client.ping(&error)) << error;
    second.stop();
}

// ---------------------------------------------------------------------
// TCP transport: the same framed protocol over a loopback listener.
// ---------------------------------------------------------------------

TEST(ServeTcp, RoundTripMatchesUdsByteForByte)
{
    setVerboseLogging(false);
    // Both listeners on one daemon: a response served over TCP must be
    // byte-identical to the same request served over UDS (and to the
    // in-process listing).
    serve::ServerConfig config = baseConfig(testSocketPath("tcpboth"));
    config.listenTcp = "127.0.0.1:0";
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());
    ASSERT_GT(server.boundTcpPort(), 0);

    serve::JobSet set = oneJobSet("DCT");
    std::string expected = localListing(set);
    std::string error;

    serve::ScheduleClient uds;
    ASSERT_TRUE(uds.connect(config.socketPath, &error)) << error;
    serve::Response cold;
    ASSERT_TRUE(uds.schedule(set, 0, &cold, &error)) << error;
    ASSERT_EQ(cold.status, serve::ResponseStatus::Ok) << cold.message;
    EXPECT_EQ(cold.listing, expected);

    serve::ScheduleClient tcp;
    ASSERT_TRUE(tcp.connectTcp(tcpAddress(server), &error)) << error;
    EXPECT_TRUE(tcp.ping(&error)) << error;
    serve::Response warm;
    ASSERT_TRUE(tcp.schedule(set, 0, &warm, &error)) << error;
    ASSERT_EQ(warm.status, serve::ResponseStatus::Ok) << warm.message;
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.listing, cold.listing);
    EXPECT_EQ(warm.ii, cold.ii);
    EXPECT_EQ(warm.length, cold.length);
    EXPECT_EQ(warm.copiesInserted, cold.copiesInserted);

    std::string statsJson;
    ASSERT_TRUE(tcp.stats(&statsJson, &error)) << error;
    EXPECT_NE(statsJson.find("\"serve\""), std::string::npos);
    server.stop();
}

TEST(ServeTcp, HostileFramesAndVersionMismatch)
{
    setVerboseLogging(false);
    serve::ServerConfig config = tcpConfig();
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());
    int port = server.boundTcpPort();
    ASSERT_GT(port, 0);

    // Well-framed garbage: BadRequest (or a dropped connection), but
    // the server keeps serving.
    {
        int fd = rawConnectTcp(port);
        std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef,
                                             0x00, 0x01, 0x02};
        ASSERT_TRUE(serve::writeFrame(fd, garbage));
        std::vector<std::uint8_t> reply;
        (void)serve::readFrame(fd, &reply);
        ::close(fd);
    }

    // Hostile 4 GiB length prefix: refused before allocation.
    {
        int fd = rawConnectTcp(port);
        const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
        EXPECT_EQ(::write(fd, huge, sizeof huge), 4);
        std::vector<std::uint8_t> reply;
        EXPECT_FALSE(serve::readFrame(fd, &reply));
        ::close(fd);
    }

    // Truncated frame then hangup: the reader cleans up.
    {
        int fd = rawConnectTcp(port);
        const std::uint8_t shortFrame[6] = {0x40, 0x00, 0x00, 0x00,
                                            0x01, 0x02};
        EXPECT_EQ(::write(fd, shortFrame, sizeof shortFrame), 6);
        ::close(fd);
    }

    // A future protocol version: a well-formed ping frame from one
    // version past the ceiling must come back BadRequest naming the
    // version, not crash or hang.
    {
        int fd = rawConnectTcp(port);
        std::vector<std::uint8_t> payload;
        wire::ByteWriter writer(payload);
        writer.u8(serve::kProtocolVersion + 1);
        writer.u8(static_cast<std::uint8_t>(serve::RequestType::Ping));
        writer.u64(77);
        writer.i64(0);
        ASSERT_TRUE(serve::writeFrame(fd, payload));
        std::vector<std::uint8_t> reply;
        ASSERT_TRUE(serve::readFrame(fd, &reply));
        wire::ByteReader reader(
            std::span<const std::uint8_t>(reply.data(), reply.size()));
        serve::Response response;
        ASSERT_TRUE(serve::decodeResponse(reader, &response));
        EXPECT_EQ(response.status, serve::ResponseStatus::BadRequest);
        EXPECT_NE(response.message.find("unsupported protocol version"),
                  std::string::npos)
            << response.message;
        ::close(fd);
    }
    EXPECT_GE(server.metrics().counters().get("serve.bad_requests"), 2u);

    // The server is still healthy.
    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connectTcp(tcpAddress(server), &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(response.listing, localListing(set));
    server.stop();
}

TEST(ServeTcp, OverloadRejectedWhenAdmissionFull)
{
    setVerboseLogging(false);
    serve::ServerConfig config = tcpConfig();
    config.maxInFlight = 0;
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connectTcp(tcpAddress(server), &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::RejectedOverload);
    EXPECT_TRUE(client.ping(&error)) << error;
    server.stop();
}

TEST(ServeTcp, ExpiredDeadlineAnsweredWithoutScheduling)
{
    setVerboseLogging(false);
    serve::ServerConfig config = tcpConfig();
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connectTcp(tcpAddress(server), &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, -1, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::DeadlineExceeded);
    // The expired-deadline path answers before the fast-path cache
    // probe and before any scheduling work.
    EXPECT_EQ(server.pipeline().statsSnapshot().get("ops_scheduled"),
              0u);
    EXPECT_EQ(server.metrics().counters().get("serve.fast_path_hits") +
                  server.metrics().counters().get(
                      "serve.fast_path_misses"),
              0u);
    server.stop();
}

TEST(ServeTcp, GracefulDrainCompletesInFlightWork)
{
    setVerboseLogging(false);
    serve::ServerConfig config = tcpConfig();
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());
    std::string address = tcpAddress(server);

    serve::JobSet set = oneJobSet("FFT-U4");
    std::string expected = localListing(set);
    serve::Response response;
    std::string error;
    bool ok = false;
    std::thread requester([&] {
        serve::ScheduleClient client;
        if (client.connectTcp(address, &error))
            ok = client.schedule(set, 0, &response, &error);
    });
    auto waitStart = std::chrono::steady_clock::now();
    while (server.metrics().counters().get("serve.schedule_requests") <
               1 &&
           std::chrono::steady_clock::now() - waitStart <
               std::chrono::seconds(10))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.stop();
    requester.join();

    ASSERT_TRUE(ok) << error;
    if (response.status == serve::ResponseStatus::Ok)
        EXPECT_EQ(response.listing, expected);
    else
        EXPECT_EQ(response.status,
                  serve::ResponseStatus::ShuttingDown);
    EXPECT_FALSE(server.running());

    // The port is closed; new connections fail cleanly.
    serve::ScheduleClient late;
    EXPECT_FALSE(late.connectTcp(address, &error));
}

// ---------------------------------------------------------------------
// Reader-thread fast path and shared-cache-directory ownership.
// ---------------------------------------------------------------------

TEST(Serve, FastPathMatchesDispatchedWarmResponses)
{
    setVerboseLogging(false);
    serve::JobSet set = oneJobSet("FIR-INT");
    std::string error;

    // Reference daemon: fast path off, warm hits dispatch through the
    // pipeline queue.
    serve::Response dispatched;
    {
        serve::ServerConfig config =
            baseConfig(testSocketPath("fp_off"));
        config.readerFastPath = false;
        serve::ScheduleServer server(config);
        ASSERT_TRUE(server.start());
        serve::ScheduleClient client;
        ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
        serve::Response cold;
        ASSERT_TRUE(client.schedule(set, 0, &cold, &error)) << error;
        ASSERT_EQ(cold.status, serve::ResponseStatus::Ok);
        ASSERT_TRUE(client.schedule(set, 0, &dispatched, &error))
            << error;
        ASSERT_EQ(dispatched.status, serve::ResponseStatus::Ok);
        ASSERT_TRUE(dispatched.cacheHit);
        EXPECT_EQ(server.metrics().counters().get(
                      "serve.fast_path_hits"),
                  0u);
        server.stop();
    }

    // Fast-path daemon: the warm hit is answered on the reader thread
    // and must be byte-identical in every result field.
    serve::ServerConfig config = baseConfig(testSocketPath("fp_on"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());
    serve::ScheduleClient client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    serve::Response cold;
    ASSERT_TRUE(client.schedule(set, 0, &cold, &error)) << error;
    ASSERT_EQ(cold.status, serve::ResponseStatus::Ok);
    serve::Response fast;
    ASSERT_TRUE(client.schedule(set, 0, &fast, &error)) << error;
    ASSERT_EQ(fast.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(server.metrics().counters().get("serve.fast_path_hits"),
              1u);

    EXPECT_TRUE(fast.cacheHit);
    EXPECT_EQ(fast.success, dispatched.success);
    EXPECT_EQ(fast.cancelled, dispatched.cancelled);
    EXPECT_EQ(fast.ii, dispatched.ii);
    EXPECT_EQ(fast.length, dispatched.length);
    EXPECT_EQ(fast.resMii, dispatched.resMii);
    EXPECT_EQ(fast.recMii, dispatched.recMii);
    EXPECT_EQ(fast.copiesInserted, dispatched.copiesInserted);
    EXPECT_EQ(fast.listing, dispatched.listing);
    EXPECT_EQ(fast.verifierErrors, dispatched.verifierErrors);
    EXPECT_EQ(fast.listing, localListing(set));
    server.stop();
}

TEST(Serve, TwoDaemonsShareCacheDirectoryViaFlock)
{
    setVerboseLogging(false);
    std::string dir = freshCacheDir("cs_serve_flock");
    serve::JobSet set = oneJobSet("DCT");
    std::string expected = localListing(set);
    std::string error;

    {
        serve::ServerConfig configA =
            baseConfig(testSocketPath("flock_a"));
        configA.cacheDirectory = dir;
        configA.cacheShards = 2;
        serve::ScheduleServer a(configA);
        ASSERT_TRUE(a.start());

        serve::ServerConfig configB =
            baseConfig(testSocketPath("flock_b"));
        configB.cacheDirectory = dir;
        configB.cacheShards = 2;
        serve::ScheduleServer b(configB);
        ASSERT_TRUE(b.start());

        // A opened first and holds the flock on every shard; B opened
        // the same files read-only.
        EXPECT_EQ(a.pipeline().cache().diskStats().ownedShards, 2u);
        EXPECT_EQ(b.pipeline().cache().diskStats().ownedShards, 0u);

        serve::ScheduleClient clientA;
        ASSERT_TRUE(clientA.connect(configA.socketPath, &error))
            << error;
        serve::Response fromA;
        ASSERT_TRUE(clientA.schedule(set, 0, &fromA, &error)) << error;
        ASSERT_EQ(fromA.status, serve::ResponseStatus::Ok);
        EXPECT_EQ(fromA.listing, expected);
        EXPECT_GE(a.pipeline().cache().diskStats().writes, 1u);

        // B schedules the same job independently: correct bytes, but
        // its disk insert is dropped instead of corrupting A's shard.
        serve::ScheduleClient clientB;
        ASSERT_TRUE(clientB.connect(configB.socketPath, &error))
            << error;
        serve::Response fromB;
        ASSERT_TRUE(clientB.schedule(set, 0, &fromB, &error)) << error;
        ASSERT_EQ(fromB.status, serve::ResponseStatus::Ok);
        EXPECT_EQ(fromB.listing, expected);
        auto statsB = b.pipeline().cache().diskStats();
        EXPECT_EQ(statsB.writes, 0u);
        EXPECT_GE(statsB.droppedReadOnly, 1u);

        b.stop();
        a.stop();
    } // destruction releases the flocks and writes A's index footers

    // A successor daemon re-acquires ownership and restarts warm from
    // the footer, serving A's result byte-identically.
    serve::ServerConfig configC = baseConfig(testSocketPath("flock_c"));
    configC.cacheDirectory = dir;
    configC.cacheShards = 2;
    serve::ScheduleServer c(configC);
    ASSERT_TRUE(c.start());
    auto statsC = c.pipeline().cache().diskStats();
    EXPECT_EQ(statsC.ownedShards, 2u);
    EXPECT_GE(statsC.footerLoads, 1u);
    EXPECT_GE(statsC.loadedEntries, 1u);
    EXPECT_EQ(statsC.scanLoads, 0u);

    serve::ScheduleClient clientC;
    ASSERT_TRUE(clientC.connect(configC.socketPath, &error)) << error;
    serve::Response fromC;
    ASSERT_TRUE(clientC.schedule(set, 0, &fromC, &error)) << error;
    ASSERT_EQ(fromC.status, serve::ResponseStatus::Ok);
    EXPECT_TRUE(fromC.cacheHit);
    EXPECT_EQ(fromC.listing, expected);
    c.stop();
}

TEST(Serve, OwnershipFailoverPromotesSurvivorDaemon)
{
    setVerboseLogging(false);
    std::string dir = freshCacheDir("cs_serve_failover");
    serve::JobSet firstSet = oneJobSet("DCT");
    serve::JobSet secondSet = oneJobSet("FFT");
    std::string expectedFirst = localListing(firstSet);
    std::string expectedSecond = localListing(secondSet);
    std::string error;

    // Daemon A wins the single shard; B opens it read-only but keeps
    // retrying ownership at a test-fast interval.
    serve::ServerConfig configA =
        baseConfig(testSocketPath("failover_a"));
    configA.cacheDirectory = dir;
    configA.cacheShards = 1;
    std::optional<serve::ScheduleServer> a;
    a.emplace(configA);
    ASSERT_TRUE(a->start());

    serve::ServerConfig configB =
        baseConfig(testSocketPath("failover_b"));
    configB.cacheDirectory = dir;
    configB.cacheShards = 1;
    configB.ownershipRetryMs = 10;
    serve::ScheduleServer b(configB);
    ASSERT_TRUE(b.start());
    EXPECT_EQ(a->pipeline().cache().diskStats().ownedShards, 1u);
    EXPECT_EQ(b.pipeline().cache().diskStats().ownedShards, 0u);

    // A persists one result, then dies (drain + destruction releases
    // its flock and writes the shard footer).
    serve::ScheduleClient clientA;
    ASSERT_TRUE(clientA.connect(configA.socketPath, &error)) << error;
    serve::Response fromA;
    ASSERT_TRUE(clientA.schedule(firstSet, 0, &fromA, &error)) << error;
    ASSERT_EQ(fromA.status, serve::ResponseStatus::Ok);
    ASSERT_GE(a->pipeline().cache().diskStats().writes, 1u);
    a->stop();
    a.reset();

    // B's next cache traffic crosses the retry interval, wins the
    // orphaned flock, and re-indexes the shard — A's entry included.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    serve::ScheduleClient clientB;
    ASSERT_TRUE(clientB.connect(configB.socketPath, &error)) << error;
    serve::Response firstFromB;
    ASSERT_TRUE(clientB.schedule(firstSet, 0, &firstFromB, &error))
        << error;
    ASSERT_EQ(firstFromB.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(firstFromB.listing, expectedFirst);
    auto statsB = b.pipeline().cache().diskStats();
    EXPECT_EQ(statsB.ownershipPromotions, 1u);
    EXPECT_EQ(statsB.ownedShards, 1u);
    EXPECT_GE(statsB.loadedEntries, 1u);

    // The promoted daemon now persists new work where the pre-PR
    // behavior dropped it read-only forever.
    serve::Response secondFromB;
    ASSERT_TRUE(clientB.schedule(secondSet, 0, &secondFromB, &error))
        << error;
    ASSERT_EQ(secondFromB.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(secondFromB.listing, expectedSecond);
    EXPECT_GE(b.pipeline().cache().diskStats().writes, 1u);
    b.stop();
}

// ---------------------------------------------------------------------
// Soak: open-loop load with connection, cache, and deadline churn.
// Runs under the perf ctest label (CS_SLOW_TESTS), not tier1; set
// CS_SOAK_MS to stretch the default few seconds into a real soak.
// ---------------------------------------------------------------------

/** Numeric field from a flat JSON line (-1 when absent). */
std::int64_t
jsonField(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return -1;
    return std::atoll(line.c_str() + pos + needle.size());
}

TEST(Serve, ResponsesEchoServerRequestIds)
{
    setVerboseLogging(false);
    serve::ServerConfig config = baseConfig(testSocketPath("reqid"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;

    // Every request type gets a server-allocated id, echoed in the
    // reply (protocol v2); ids are nonzero and strictly increasing on
    // one connection.
    std::uint64_t last = 0;
    for (int i = 0; i < 3; ++i) {
        serve::Response response;
        serve::JobSet set = oneJobSet("DCT");
        ASSERT_TRUE(client.schedule(set, 0, &response, &error))
            << error;
        ASSERT_EQ(response.status, serve::ResponseStatus::Ok);
        EXPECT_GT(response.serverRequestId, last);
        last = response.serverRequestId;
    }
    serve::Request ping;
    ping.type = serve::RequestType::Ping;
    serve::Response pong;
    ASSERT_TRUE(client.call(std::move(ping), &pong, &error)) << error;
    EXPECT_GT(pong.serverRequestId, last);
    server.stop();
}

TEST(Serve, OldProtocolClientsGetUntailedResponses)
{
    // Backward compatibility: a v1 client's frames still decode, and
    // its replies carry no serverRequestId tail — byte for byte the
    // v1 layout, exactly 8 bytes shorter than the v2 reply to the
    // same request.
    setVerboseLogging(false);
    serve::ServerConfig config = baseConfig(testSocketPath("v1"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    auto rawPing = [&](std::uint8_t version, std::uint64_t id,
                       std::vector<std::uint8_t> *reply) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, config.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0);
        serve::Request request;
        request.type = serve::RequestType::Ping;
        request.requestId = id;
        request.protocolVersion = version;
        std::vector<std::uint8_t> payload;
        wire::ByteWriter writer(payload);
        serve::encodeRequest(writer, request);
        ASSERT_TRUE(serve::writeFrame(fd, payload));
        ASSERT_TRUE(serve::readFrame(fd, reply));
        ::close(fd);
    };

    std::vector<std::uint8_t> v1Reply, v2Reply;
    rawPing(1, 42, &v1Reply);
    rawPing(serve::kProtocolVersion, 43, &v2Reply);
    EXPECT_EQ(v1Reply.size() + 8, v2Reply.size());

    serve::Response v1Response;
    {
        wire::ByteReader reader(std::span<const std::uint8_t>(
            v1Reply.data(), v1Reply.size()));
        ASSERT_TRUE(serve::decodeResponse(reader, &v1Response));
    }
    EXPECT_EQ(v1Response.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(v1Response.requestId, 42u);
    EXPECT_EQ(v1Response.serverRequestId, 0u);

    serve::Response v2Response;
    {
        wire::ByteReader reader(std::span<const std::uint8_t>(
            v2Reply.data(), v2Reply.size()));
        ASSERT_TRUE(serve::decodeResponse(reader, &v2Response));
    }
    EXPECT_EQ(v2Response.requestId, 43u);
    EXPECT_GT(v2Response.serverRequestId, 0u);

    // Watch is v2-only: a v1 client asking for it gets BadRequest,
    // not a stream.
    {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, config.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0);
        serve::Request request;
        request.type = serve::RequestType::Watch;
        request.requestId = 9;
        request.protocolVersion = 1;
        std::vector<std::uint8_t> payload;
        wire::ByteWriter writer(payload);
        serve::encodeRequest(writer, request);
        ASSERT_TRUE(serve::writeFrame(fd, payload));
        std::vector<std::uint8_t> reply;
        ASSERT_TRUE(serve::readFrame(fd, &reply));
        wire::ByteReader reader(std::span<const std::uint8_t>(
            reply.data(), reply.size()));
        serve::Response response;
        ASSERT_TRUE(serve::decodeResponse(reader, &response));
        EXPECT_EQ(response.status, serve::ResponseStatus::BadRequest);
        ::close(fd);
    }
    server.stop();
}

TEST(Serve, WatchStreamsLiveStatsOverUds)
{
    setVerboseLogging(false);
    serve::ServerConfig config = baseConfig(testSocketPath("watch"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient worker;
    std::string error;
    ASSERT_TRUE(worker.connect(config.socketPath, &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(worker.schedule(set, 0, &response, &error)) << error;
    ASSERT_TRUE(worker.schedule(set, 0, &response, &error)) << error;

    serve::ScheduleClient watcher;
    ASSERT_TRUE(watcher.connect(config.socketPath, &error)) << error;
    std::vector<std::string> frames;
    ASSERT_TRUE(watcher.watch(
        20,
        [&frames](const std::string &frame) {
            frames.push_back(frame);
            return frames.size() < 3;
        },
        &error))
        << error;
    ASSERT_EQ(frames.size(), 3u);
    std::int64_t lastSeq = -1;
    for (const std::string &frame : frames) {
        EXPECT_EQ(frame.front(), '{');
        EXPECT_EQ(frame.back(), '}');
        EXPECT_EQ(jsonField(frame, "seq"), lastSeq + 1);
        lastSeq = jsonField(frame, "seq");
        EXPECT_EQ(jsonField(frame, "interval_ms"), 20);
        EXPECT_GE(jsonField(frame, "requests_total"), 2);
        EXPECT_GE(jsonField(frame, "p50_us"), 0);
        EXPECT_GT(jsonField(frame, "rss_kb"), 0);
        EXPECT_GE(jsonField(frame, "inflight"), 0);
    }
    // The second schedule was a warm hit, so the stream reports it.
    EXPECT_GE(jsonField(frames.back(), "warm_hits_total"), 1);
    server.stop();
}

TEST(ServeTcp, WatchStreamsOverTcp)
{
    setVerboseLogging(false);
    serve::ServerConfig config = tcpConfig();
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient worker;
    std::string error;
    ASSERT_TRUE(worker.connectTcp(tcpAddress(server), &error))
        << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(worker.schedule(set, 0, &response, &error)) << error;

    serve::ScheduleClient watcher;
    ASSERT_TRUE(watcher.connectTcp(tcpAddress(server), &error))
        << error;
    int ticks = 0;
    ASSERT_TRUE(watcher.watch(
        10,
        [&ticks](const std::string &frame) {
            EXPECT_GE(jsonField(frame, "requests_total"), 1);
            return ++ticks < 2;
        },
        &error))
        << error;
    EXPECT_EQ(ticks, 2);

    // A watcher left subscribed when the server stops gets EOF, which
    // the client reports as a clean end of stream.
    serve::ScheduleClient lingering;
    ASSERT_TRUE(lingering.connectTcp(tcpAddress(server), &error))
        << error;
    std::thread stopper([&server] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        server.stop();
    });
    int seen = 0;
    EXPECT_TRUE(lingering.watch(
        10,
        [&seen](const std::string &) {
            ++seen;
            return true;
        },
        &error))
        << error;
    EXPECT_GE(seen, 1);
    stopper.join();
}

TEST(ServeSoak, OpenLoopChurnStaysClean)
{
    setVerboseLogging(false);
    long soakMs = 6000;
    if (const char *env = std::getenv("CS_SOAK_MS"))
        if (long v = std::atol(env); v > 0)
            soakMs = v;

    serve::ServerConfig config = baseConfig(testSocketPath("soak"));
    config.listenTcp = "127.0.0.1:0";
    config.cacheDirectory = freshCacheDir("cs_serve_soak");
    config.cacheShards = 4;
    config.maxInFlight = 32;
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());
    std::string address = tcpAddress(server);

    // The soak runs with the telemetry sampler on, exactly as a
    // production soak would (cs_serve --telemetry): the JSONL it
    // writes is parsed and asserted on below.
    namespace fs = std::filesystem;
    std::string telemetryPath =
        (fs::path(::testing::TempDir()) / "cs_soak_telemetry.jsonl")
            .string();
    std::uint64_t rssAtStart = readRssKb();
    TelemetrySampler sampler;
    TelemetryConfig telemetryConfig;
    telemetryConfig.path = telemetryPath;
    telemetryConfig.intervalMs = 100;
    ASSERT_TRUE(sampler.start(
        telemetryConfig,
        [&server] { return server.counterSnapshot(); },
        [&server](std::ostream &os) {
            server.writeTelemetryFields(os);
        }));

    // Cheap kernels with a rotating maxDelay: a bounded working set so
    // warm hits dominate, plus a steady trickle of cold inserts.
    const char *names[] = {"DCT", "FIR-INT"};
    std::atomic<long> protocolErrors{0};
    std::atomic<bool> stop{false};
    auto worker = [&](int id) {
        std::uint64_t iter = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            // Connection churn: a fresh client every batch, alternating
            // transports.
            serve::ScheduleClient client;
            std::string error;
            bool connected =
                (id % 2 == 0)
                    ? client.connect(config.socketPath, &error)
                    : client.connectTcp(address, &error);
            if (!connected) {
                ++protocolErrors;
                break;
            }
            for (int k = 0; k < 8 && !stop.load(); ++k, ++iter) {
                serve::JobSet set = oneJobSet(
                    names[iter % 2],
                    2048 + static_cast<int>((iter * 7 + id) % 16));
                // Deadline pressure: every fourth request arrives
                // already expired.
                std::int64_t deadline = (k % 4 == 3) ? -1 : 0;
                serve::Response response;
                if (!client.schedule(set, deadline, &response,
                                     &error)) {
                    ++protocolErrors;
                    return;
                }
                bool okStatus =
                    response.status == serve::ResponseStatus::Ok ||
                    (deadline < 0 &&
                     response.status ==
                         serve::ResponseStatus::DeadlineExceeded) ||
                    response.status ==
                        serve::ResponseStatus::RejectedOverload;
                if (!okStatus)
                    ++protocolErrors;
            }
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t)
        threads.emplace_back(worker, t);

    // Sample while the load runs: serving and cache counters must be
    // monotone (a regression here means lost or double-counted work).
    std::uint64_t lastRequests = 0, lastWrites = 0, lastHits = 0;
    auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(soakMs)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        std::uint64_t requests = server.metrics().counters().get(
            "serve.schedule_requests");
        auto disk = server.pipeline().cache().diskStats();
        EXPECT_GE(requests, lastRequests);
        EXPECT_GE(disk.writes, lastWrites);
        EXPECT_GE(disk.hits + disk.misses, lastHits);
        lastRequests = requests;
        lastWrites = disk.writes;
        lastHits = disk.hits + disk.misses;
    }
    stop.store(true);
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(protocolErrors.load(), 0);
    EXPECT_GT(lastRequests, 0u);
    EXPECT_EQ(server.metrics().counters().get("serve.bad_requests"),
              0u);
    EXPECT_EQ(server.metrics().counters().get("serve.write_errors"),
              0u);
    auto disk = server.pipeline().cache().diskStats();
    EXPECT_EQ(disk.readErrors, 0u);
    EXPECT_EQ(disk.writeErrors, 0u);
    EXPECT_EQ(disk.droppedReadOnly, 0u);

    // Telemetry assertions: the sampler saw the whole soak. Every
    // line parses, the serving counters are monotone across lines,
    // and the resource story holds — RSS growth and shard-file bytes
    // stay inside documented bounds (256 MiB and 16 MiB: generous
    // multiples of what a clean soak of this length produces, tight
    // enough to catch a leak or unbounded shard growth).
    sampler.stop();
    std::vector<std::string> lines;
    {
        std::ifstream in(telemetryPath);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 3u);
    std::int64_t lastSeq = -1, lastRequestsSeen = -1;
    for (const std::string &line : lines) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        long depth = 0;
        for (char c : line) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
            ASSERT_GE(depth, 0) << line;
        }
        ASSERT_EQ(depth, 0) << line;
        EXPECT_EQ(jsonField(line, "seq"), lastSeq + 1);
        lastSeq = jsonField(line, "seq");
        EXPECT_GE(jsonField(line, "serve.schedule_requests"),
                  lastRequestsSeen);
        lastRequestsSeen = jsonField(line, "serve.schedule_requests");
        EXPECT_GE(jsonField(line, "inflight"), 0);
        EXPECT_GE(jsonField(line, "shard_bytes"), 0);
        EXPECT_GT(jsonField(line, "rss_kb"), 0);
    }
    EXPECT_GT(lastRequestsSeen, 0);
    const std::string &last = lines.back();
    EXPECT_LT(jsonField(last, "rss_kb"),
              static_cast<std::int64_t>(rssAtStart) + 256 * 1024);
    EXPECT_LT(jsonField(last, "shard_bytes"), 16 * 1024 * 1024);
    EXPECT_GT(jsonField(last, "shard_records"), 0);
    // The latency histograms rode along: the all-outcomes summary has
    // every request.
    EXPECT_NE(last.find("\"latency\":{"), std::string::npos);
    server.stop();
}

} // namespace
} // namespace cs
