/**
 * @file
 * cs_serve end-to-end suite, run against an in-process ScheduleServer
 * on a per-test Unix-domain socket: request/response round trips,
 * byte-equivalence of served listings against in-process scheduling,
 * many concurrent clients (the TSan build pins the accept/dispatch/
 * respond paths), admission-control rejection, the already-expired
 * deadline fast path, deadline preemption of a long job, hostile
 * frames, and graceful drain/restart.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/logging.hpp"

namespace cs {
namespace {

/** Short unique socket path (sun_path is ~108 bytes; TempDir can be
 *  long, so sockets live in /tmp). */
std::string
testSocketPath(const char *tag)
{
    return "/tmp/cs_test_" + std::to_string(::getpid()) + "_" + tag +
           ".sock";
}

/** A one-job set: @p kernelName on the central machine, block mode. */
serve::JobSet
oneJobSet(const std::string &kernelName, int maxDelay = 2048)
{
    serve::JobSet set;
    set.machines.push_back(makeCentral());
    set.kernels.push_back(kernelByName(kernelName).build());
    serve::JobDescription job;
    job.label = kernelName;
    job.pipelined = false;
    job.options.maxDelay = maxDelay;
    set.jobs.push_back(std::move(job));
    return set;
}

/** The listing the server must reproduce byte for byte. */
std::string
localListing(const serve::JobSet &set)
{
    Kernel kernel = set.kernels[0];
    ScheduleResult result = scheduleBlock(
        kernel, BlockId(0), set.machines[0], set.jobs[0].options);
    CS_ASSERT(result.success, "local schedule failed");
    return exportListing(result.kernel, set.machines[0],
                         result.schedule);
}

serve::ServerConfig
baseConfig(const std::string &socketPath)
{
    serve::ServerConfig config;
    config.socketPath = socketPath;
    config.workerThreads = 2;
    config.cacheCapacity = 256;
    return config;
}

TEST(Serve, PingStatsAndScheduleRoundTrip)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("roundtrip"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    EXPECT_TRUE(client.ping(&error)) << error;

    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    ASSERT_EQ(response.status, serve::ResponseStatus::Ok)
        << response.message;
    EXPECT_TRUE(response.success);
    EXPECT_FALSE(response.cacheHit);
    EXPECT_TRUE(response.verifierErrors.empty());
    EXPECT_EQ(response.listing, localListing(set));

    // The identical request is served from the cache, byte-identical.
    serve::Response second;
    ASSERT_TRUE(client.schedule(set, 0, &second, &error)) << error;
    ASSERT_EQ(second.status, serve::ResponseStatus::Ok);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.listing, response.listing);

    std::string statsJson;
    ASSERT_TRUE(client.stats(&statsJson, &error)) << error;
    EXPECT_NE(statsJson.find("\"serve\""), std::string::npos);
    EXPECT_NE(statsJson.find("\"pipeline\""), std::string::npos);
    EXPECT_NE(statsJson.find("\"cache\""), std::string::npos);
    EXPECT_EQ(server.metrics().counters().get("serve.ok"), 2u);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(Serve, ConcurrentClientsGetByteIdenticalListings)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("concurrent"));
    config.maxInFlight = 64;
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    // Four distinct jobs; every thread requests each of them, so the
    // server multiplexes 16 connections x 4 in-flight requests over
    // scheduling work and cache hits at once.
    const char *names[] = {"DCT", "FFT-U4", "FIR-INT",
                           "Triangle Transform"};
    std::vector<serve::JobSet> sets;
    std::vector<std::string> expected;
    for (const char *name : names) {
        sets.push_back(oneJobSet(name));
        expected.push_back(localListing(sets.back()));
    }

    constexpr int kThreads = 16;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            serve::ScheduleClient client;
            std::string error;
            if (!client.connect(server.socketPath(), &error)) {
                ++failures;
                return;
            }
            for (std::size_t j = 0; j < sets.size(); ++j) {
                std::size_t job = (j + static_cast<std::size_t>(t)) %
                                  sets.size();
                serve::Response response;
                if (!client.schedule(sets[job], 0, &response,
                                     &error) ||
                    response.status != serve::ResponseStatus::Ok ||
                    response.listing != expected[job])
                    ++failures;
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.metrics().counters().get("serve.ok"),
              static_cast<std::uint64_t>(kThreads) * sets.size());
    EXPECT_EQ(server.metrics().counters().get("serve.rejected_overload"),
              0u);
    server.stop();
}

TEST(Serve, OverloadRejectedWhenAdmissionFull)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("overload"));
    config.maxInFlight = 0; // every Schedule request is over the bound
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::RejectedOverload);
    EXPECT_TRUE(response.listing.empty());
    // Rejection is backpressure, not a dead server: pings still work.
    EXPECT_TRUE(client.ping(&error)) << error;
    EXPECT_GE(server.metrics().counters().get("serve.rejected_overload"),
              1u);
    server.stop();
}

TEST(Serve, ExpiredDeadlineAnsweredWithoutScheduling)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("deadline"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, -1, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::DeadlineExceeded);
    EXPECT_TRUE(response.listing.empty());
    // The fast path answers before any scheduling work happens.
    EXPECT_EQ(server.pipeline().statsSnapshot().get("ops_scheduled"),
              0u);
    EXPECT_GE(server.metrics().counters().get("serve.deadline_expired"),
              1u);
    server.stop();
}

TEST(Serve, DeadlinePreemptsLongJob)
{
    setVerboseLogging(false);
    serve::ServerConfig config =
        baseConfig(testSocketPath("preempt"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    // Sort pipelined on the distributed machine takes seconds; a 1 ms
    // budget must preempt it at a scheduler checkpoint long before it
    // completes.
    serve::JobSet set;
    set.machines.push_back(makeDistributed());
    set.kernels.push_back(kernelByName("Sort").build());
    serve::JobDescription job;
    job.label = "Sort";
    job.pipelined = true;
    set.jobs.push_back(std::move(job));

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 1, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::DeadlineExceeded);
    EXPECT_GE(
        server.metrics().counters().get("serve.deadline_preempted"),
        1u);

    // A cancelled result is never cached: re-running with no deadline
    // must schedule anew (and is free to succeed or exhaust slack; it
    // must not be a replayed cancellation). Use a cheap job instead of
    // re-paying Sort: the cache must simply not contain the key.
    EXPECT_EQ(server.pipeline().cache().stats().entries, 0u);
    server.stop();
}

TEST(Serve, HostileFramesDoNotKillTheServer)
{
    setVerboseLogging(false);
    serve::ServerConfig config = baseConfig(testSocketPath("hostile"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    auto rawConnect = [&]() {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, config.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0);
        return fd;
    };

    // A well-framed garbage payload: the server answers BadRequest (or
    // drops the connection) but keeps serving.
    {
        int fd = rawConnect();
        std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef,
                                             0x00, 0x01, 0x02};
        ASSERT_TRUE(serve::writeFrame(fd, garbage));
        std::vector<std::uint8_t> reply;
        (void)serve::readFrame(fd, &reply);
        ::close(fd);
    }

    // A hostile length prefix (4 GiB): the server must refuse to
    // allocate and close the connection.
    {
        int fd = rawConnect();
        const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
        EXPECT_EQ(::write(fd, huge, sizeof huge), 4);
        std::vector<std::uint8_t> reply;
        EXPECT_FALSE(serve::readFrame(fd, &reply));
        ::close(fd);
    }

    // Truncated frame then hangup: reader sees a short read, cleans up.
    {
        int fd = rawConnect();
        const std::uint8_t shortFrame[6] = {0x40, 0x00, 0x00, 0x00,
                                            0x01, 0x02};
        EXPECT_EQ(::write(fd, shortFrame, sizeof shortFrame), 6);
        ::close(fd);
    }

    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    EXPECT_TRUE(client.ping(&error)) << error;
    serve::JobSet set = oneJobSet("DCT");
    serve::Response response;
    ASSERT_TRUE(client.schedule(set, 0, &response, &error)) << error;
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
    server.stop();
}

TEST(Serve, GracefulDrainCompletesInFlightWork)
{
    setVerboseLogging(false);
    serve::ServerConfig config = baseConfig(testSocketPath("drain"));
    serve::ScheduleServer server(config);
    ASSERT_TRUE(server.start());

    serve::JobSet set = oneJobSet("FFT-U4");
    std::string expected = localListing(set);
    serve::Response response;
    std::string error;
    bool ok = false;
    std::thread requester([&] {
        serve::ScheduleClient client;
        if (client.connect(server.socketPath(), &error))
            ok = client.schedule(set, 0, &response, &error);
    });
    // Begin draining only once the server has admitted the request,
    // so stop() really does race a job in flight: it must wait for
    // the job to finish and its response to be written before tearing
    // the connection down.
    auto waitStart = std::chrono::steady_clock::now();
    while (server.metrics().counters().get("serve.schedule_requests") <
               1 &&
           std::chrono::steady_clock::now() - waitStart <
               std::chrono::seconds(10))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.stop();
    requester.join();

    ASSERT_TRUE(ok) << error;
    if (response.status == serve::ResponseStatus::Ok) {
        // The common case: the job was admitted before the drain began
        // and stop() completed it.
        EXPECT_EQ(response.listing, expected);
    } else {
        // Rare on a loaded single-core box: the reader thread was
        // preempted between counting the request and admitting it, so
        // the drain won the race and bounced it. Still a clean drain.
        EXPECT_EQ(response.status,
                  serve::ResponseStatus::ShuttingDown);
    }
    EXPECT_FALSE(server.running());

    // The socket file is unlinked; new connections fail cleanly.
    serve::ScheduleClient late;
    EXPECT_FALSE(late.connect(config.socketPath, &error));
}

TEST(Serve, RestartOnSamePathAfterStop)
{
    setVerboseLogging(false);
    std::string path = testSocketPath("restart");
    {
        serve::ScheduleServer server(baseConfig(path));
        ASSERT_TRUE(server.start());
        server.stop();
    }
    serve::ScheduleServer second(baseConfig(path));
    ASSERT_TRUE(second.start());
    serve::ScheduleClient client;
    std::string error;
    ASSERT_TRUE(client.connect(path, &error)) << error;
    EXPECT_TRUE(client.ping(&error)) << error;
    second.stop();
}

} // namespace
} // namespace cs
