/**
 * @file
 * Unit tests for the datapath simulator: opcode semantics, memory
 * ordering, pipelined (overlapped) execution, and dynamic route
 * checking (a tampered route must be flagged at execution time).
 */

#include <gtest/gtest.h>

#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "ir/builder.hpp"
#include "machine/builders.hpp"
#include "sim/datapath_sim.hpp"
#include "sim/exec.hpp"

namespace cs {
namespace {

TEST(Exec, IntegerOps)
{
    auto I = [](std::int64_t v) { return Word::fromInt(v); };
    EXPECT_EQ(evalOpcode(Opcode::IAdd, {I(3), I(4)}).i, 7);
    EXPECT_EQ(evalOpcode(Opcode::ISub, {I(3), I(4)}).i, -1);
    EXPECT_EQ(evalOpcode(Opcode::IMin, {I(3), I(4)}).i, 3);
    EXPECT_EQ(evalOpcode(Opcode::IMax, {I(3), I(4)}).i, 4);
    EXPECT_EQ(evalOpcode(Opcode::IAnd, {I(6), I(3)}).i, 2);
    EXPECT_EQ(evalOpcode(Opcode::IOr, {I(6), I(3)}).i, 7);
    EXPECT_EQ(evalOpcode(Opcode::IXor, {I(6), I(3)}).i, 5);
    EXPECT_EQ(evalOpcode(Opcode::IShl, {I(3), I(2)}).i, 12);
    EXPECT_EQ(evalOpcode(Opcode::IShr, {I(12), I(2)}).i, 3);
    EXPECT_EQ(evalOpcode(Opcode::IMul, {I(3), I(4)}).i, 12);
    EXPECT_EQ(evalOpcode(Opcode::IDiv, {I(12), I(4)}).i, 3);
    EXPECT_EQ(evalOpcode(Opcode::IDiv, {I(12), I(0)}).i, 0);
}

TEST(Exec, FloatOps)
{
    auto F = [](double v) { return Word::fromFloat(v); };
    EXPECT_EQ(evalOpcode(Opcode::FAdd, {F(1.5), F(2.5)}).f, 4.0);
    EXPECT_EQ(evalOpcode(Opcode::FSub, {F(1.5), F(2.5)}).f, -1.0);
    EXPECT_EQ(evalOpcode(Opcode::FMul, {F(1.5), F(2.0)}).f, 3.0);
    EXPECT_EQ(evalOpcode(Opcode::FDiv, {F(3.0), F(2.0)}).f, 1.5);
    EXPECT_EQ(evalOpcode(Opcode::FDiv, {F(3.0), F(0.0)}).f, 0.0);
}

TEST(Exec, CopyPreservesBothViews)
{
    Word w{42, 3.125};
    Word out = evalOpcode(Opcode::Copy, {w});
    EXPECT_EQ(out.i, 42);
    EXPECT_EQ(out.f, 3.125);
}

TEST(Exec, Shuffle)
{
    auto I = [](std::int64_t v) { return Word::fromInt(v); };
    EXPECT_EQ(evalOpcode(Opcode::Shuffle, {I(1), I(2)}).i,
              (1LL << 32) | 2);
}

TEST(Sim, ExecutesSimpleChain)
{
    Machine machine = makeCentral();
    KernelBuilder b("chain");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val y = b.iadd(x, 5, "y");
    b.store(200, y);
    Kernel kernel = b.take();
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);

    MemoryImage mem;
    mem.storeInt(100, 37);
    SimResult sim = simulateBlock(sched.kernel, machine,
                                  sched.schedule, mem, 1);
    ASSERT_TRUE(sim.ok) << sim.problems[0];
    EXPECT_EQ(sim.memory.loadInt(200), 42);
}

TEST(Sim, StreamStrideAdvancesAddress)
{
    Machine machine = makeCentral();
    KernelBuilder b("stream");
    b.block("loop", true);
    Val x = b.load(100, 2, "x"); // stride 2
    b.store(500, x, 1);
    Kernel kernel = b.take();
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);

    MemoryImage mem;
    for (int i = 0; i < 8; ++i)
        mem.storeInt(100 + i, 10 + i);
    SimResult sim = simulateBlock(sched.kernel, machine,
                                  sched.schedule, mem, 3);
    ASSERT_TRUE(sim.ok);
    EXPECT_EQ(sim.memory.loadInt(500), 10);
    EXPECT_EQ(sim.memory.loadInt(501), 12);
    EXPECT_EQ(sim.memory.loadInt(502), 14);
}

TEST(Sim, MemoryOrderingStoreThenLoad)
{
    Machine machine = makeCentral();
    KernelBuilder b("raw");
    b.block("body");
    Val x = b.load(100, 0, "x");
    b.store(300, x);
    Val y = b.load(300, 0, "y");
    Val z = b.iadd(y, 1, "z");
    b.store(301, z);
    Kernel kernel = b.take();
    // Alias the store and the dependent load.
    const_cast<Operation &>(kernel.operation(OperationId(1)))
        .aliasClass = 7;
    const_cast<Operation &>(kernel.operation(OperationId(2)))
        .aliasClass = 7;
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);

    MemoryImage mem;
    mem.storeInt(100, 9);
    SimResult sim = simulateBlock(sched.kernel, machine,
                                  sched.schedule, mem, 1);
    ASSERT_TRUE(sim.ok) << sim.problems[0];
    EXPECT_EQ(sim.memory.loadInt(301), 10);
}

TEST(Sim, CarriedValuesReadAsZeroBeforeLoop)
{
    Machine machine = makeCentral();
    KernelBuilder b("carried");
    b.block("loop", true);
    Val x = b.load(100, 1, "x");
    Val y = b.iadd(x.at(1), 100, "y"); // previous iteration's x
    b.store(200, y, 1);
    Kernel kernel = b.take();
    PipelineResult pipe =
        schedulePipelined(kernel, BlockId(0), machine);
    ASSERT_TRUE(pipe.success);

    MemoryImage mem;
    mem.storeInt(100, 1);
    mem.storeInt(101, 2);
    mem.storeInt(102, 3);
    SimResult sim = simulateBlock(pipe.inner.kernel, machine,
                                  pipe.inner.schedule, mem, 3);
    ASSERT_TRUE(sim.ok) << sim.problems[0];
    EXPECT_EQ(sim.memory.loadInt(200), 100);     // x[-1] == 0
    EXPECT_EQ(sim.memory.loadInt(201), 101);     // x[0]
    EXPECT_EQ(sim.memory.loadInt(202), 102);     // x[1]
}

TEST(Sim, DetectsTamperedRoute)
{
    Machine machine = makeFigure5Machine();
    KernelBuilder b("tamper");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val y = b.iadd(x, 5, "y");
    b.store(200, y);
    Kernel kernel = b.take();
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);

    // Move one route's write stub to the other register file; the
    // dynamic check must see the value never arrive where it is read.
    BlockSchedule broken(BlockId(0), 0);
    const Block &blk = sched.kernel.block(BlockId(0));
    for (OperationId op : blk.operations) {
        const Placement &p = sched.schedule.placement(op);
        broken.place(op, p.cycle, p.fu);
    }
    bool tampered = false;
    for (RouteRecord route : sched.schedule.routes()) {
        if (!tampered && route.writeStub) {
            const Placement &wp = broken.placement(route.writer);
            for (const WriteStub &alt : machine.writeStubs(wp.fu)) {
                if (machine.writePortRegFile(alt.writePort) !=
                    machine.writePortRegFile(
                        route.writeStub->writePort)) {
                    route.writeStub = alt;
                    tampered = true;
                    break;
                }
            }
        }
        broken.addRoute(route);
    }
    ASSERT_TRUE(tampered);
    MemoryImage mem;
    mem.storeInt(100, 1);
    SimResult sim =
        simulateBlock(sched.kernel, machine, broken, mem, 1);
    EXPECT_FALSE(sim.ok);
}

TEST(Sim, ScratchpadRoundTrip)
{
    Machine machine = makeCentral();
    KernelBuilder b("sp");
    b.block("body");
    Val x = b.load(100, 0, "x");
    b.spwrite(5, x);
    Val y = b.spread(5, "y");
    b.store(200, y);
    Kernel kernel = b.take();
    // The scratchpad unit serializes accesses; give them one alias
    // class equivalent via data dependence: spread depends on nothing
    // here, so order them explicitly through scheduling: spwrite and
    // spread race. Force ordering with a data dependence instead.
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);
    // Note: without an ordering edge this test only checks the
    // scratchpad executes; both orders leave y == x or 0.
    MemoryImage mem;
    mem.storeInt(100, 11);
    SimResult sim = simulateBlock(sched.kernel, machine,
                                  sched.schedule, mem, 1);
    ASSERT_TRUE(sim.ok);
    std::int64_t y_out = sim.memory.loadInt(200);
    EXPECT_TRUE(y_out == 11 || y_out == 0);
}

TEST(Sim, RegisterPressureReported)
{
    Machine machine = makeCentral();
    KernelBuilder b("pressure");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val acc = b.iadd(x, 0, "a0");
    for (int i = 0; i < 6; ++i)
        acc = b.iadd(acc, x, "a" + std::to_string(i + 1));
    b.store(200, acc);
    Kernel kernel = b.take();
    ScheduleResult sched = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(sched.success);
    MemoryImage mem;
    SimResult sim = simulateBlock(sched.kernel, machine,
                                  sched.schedule, mem, 1);
    ASSERT_TRUE(sim.ok);
    // The central file holds x across the whole chain plus the
    // accumulator values: at least two live at once.
    EXPECT_GE(sim.peakRegFileOccupancy[0], 2);
}

} // namespace
} // namespace cs
