/**
 * @file
 * End-to-end smoke tests: the paper's motivating example (Figures 4-7)
 * scheduled on the Figure 5 machine, and basic sanity on the standard
 * evaluation machines.
 */

#include <gtest/gtest.h>

#include "core/conventional_scheduler.hpp"
#include "core/list_scheduler.hpp"
#include "ir/builder.hpp"
#include "machine/builders.hpp"

namespace cs {
namespace {

/** The Figure 4 code fragment. */
Kernel
motivatingKernel()
{
    KernelBuilder b("figure4");
    b.block("body");
    Val bb = b.iadd(1, 2, "b");     // 1: b = ... + ...
    Val aa = b.load(100, 0, "a");   // 2: a = load ...
    Val cc = b.iadd(3, 4, "c");     // 3: c = ... + ...
    Val t = b.iadd(aa, bb, "t");    // 4: ... = a + b
    Val u = b.iadd(aa, cc, "u");    // 5: ... = a + c
    b.store(200, t);
    b.store(201, u);
    return b.take();
}

TEST(Smoke, Figure5MachineIsCopyConnected)
{
    Machine machine = makeFigure5Machine();
    std::string why;
    EXPECT_TRUE(machine.checkCopyConnected(&why)) << why;
}

TEST(Smoke, StandardMachinesAreCopyConnected)
{
    std::string why;
    EXPECT_TRUE(makeCentral().checkCopyConnected(&why)) << why;
    EXPECT_TRUE(makeClustered({}, 2).checkCopyConnected(&why)) << why;
    EXPECT_TRUE(makeClustered({}, 4).checkCopyConnected(&why)) << why;
    EXPECT_TRUE(makeDistributed().checkCopyConnected(&why)) << why;
}

TEST(Smoke, MotivatingExampleSchedulesOnFigure5)
{
    Machine machine = makeFigure5Machine();
    Kernel kernel = motivatingKernel();
    ScheduleResult result =
        scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success) << result.failure;

    auto problems =
        validateSchedule(result.kernel, machine, result.schedule);
    for (const auto &p : problems)
        ADD_FAILURE() << p;

    // The paper's resolution needs at least one copy operation.
    EXPECT_GE(result.stats.get("copies_inserted") -
                  result.stats.get("copies_unwound"),
              1u);
}

TEST(Smoke, ConventionalSchedulerFailsOnFigure5)
{
    Machine machine = makeFigure5Machine();
    Kernel kernel = motivatingKernel();
    ConventionalResult result =
        scheduleConventional(kernel, BlockId(0), machine);
    // Without interconnect allocation some communication is
    // unroutable: the Figure 6 observation.
    EXPECT_GT(result.unroutable, 0);
}

TEST(Smoke, MotivatingExampleSchedulesOnCentral)
{
    StdMachineConfig cfg;
    cfg.unitLatency = true;
    Machine machine = makeCentral(cfg);
    Kernel kernel = motivatingKernel();
    ScheduleResult result =
        scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success) << result.failure;
    auto problems =
        validateSchedule(result.kernel, machine, result.schedule);
    for (const auto &p : problems)
        ADD_FAILURE() << p;
    // On a central register file no copies are ever needed.
    EXPECT_EQ(result.stats.get("copies_inserted"),
              result.stats.get("copies_unwound"));
    // Critical path: iadd(1) -> iadd(1) -> store: length 3.
    EXPECT_EQ(result.schedule.length(result.kernel, machine), 3);
}

TEST(Smoke, MotivatingExampleSchedulesOnDistributed)
{
    StdMachineConfig cfg;
    cfg.unitLatency = true;
    Machine machine = makeDistributed(cfg);
    Kernel kernel = motivatingKernel();
    ScheduleResult result =
        scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(result.success) << result.failure;
    auto problems =
        validateSchedule(result.kernel, machine, result.schedule);
    for (const auto &p : problems)
        ADD_FAILURE() << p;
}

} // namespace
} // namespace cs
