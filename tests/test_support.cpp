/**
 * @file
 * Unit tests for the support library: logging, statistics, tables,
 * the deterministic RNG, and fixed-point helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/fixed_point.hpp"
#include "support/logging.hpp"
#include "support/memory_image.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace cs {
namespace {

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(CS_PANIC("boom ", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(CS_FATAL("bad input"), FatalError);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(CS_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(CS_ASSERT(1 + 1 == 3, "broken"), PanicError);
}

TEST(Stats, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geometricMean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_NEAR(geometricMean({1.0, 10.0}), 3.1622776601, 1e-9);
}

TEST(Stats, GeometricMeanRejectsBadInput)
{
    EXPECT_THROW(geometricMean({}), PanicError);
    EXPECT_THROW(geometricMean({1.0, -1.0}), PanicError);
    EXPECT_THROW(geometricMean({0.0}), PanicError);
}

TEST(Stats, ArithmeticMeanAndExtremes)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
}

TEST(Stats, CounterSet)
{
    CounterSet counters;
    EXPECT_EQ(counters.get("x"), 0u);
    counters.bump("x");
    counters.bump("x", 4);
    counters.bump("y");
    EXPECT_EQ(counters.get("x"), 5u);
    EXPECT_EQ(counters.get("y"), 1u);
    counters.clear();
    EXPECT_EQ(counters.get("x"), 0u);
}

TEST(Table, RendersAlignedRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1.00"});
    table.addRow({"b", "10.50"});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("10.50"), std::string::npos);
    // Header separator present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, RowArityChecked)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Table, TextBarClamps)
{
    EXPECT_EQ(textBar(1.5, 10), std::string(10, '#'));
    EXPECT_EQ(textBar(-0.5, 10), std::string(10, ' '));
    EXPECT_EQ(textBar(0.5, 10), "#####     ");
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformDoubleInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformDouble(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(9);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = items;
    rng.shuffle(items);
    std::sort(items.begin(), items.end());
    EXPECT_EQ(items, orig);
}

TEST(FixedPoint, RoundTrip)
{
    EXPECT_EQ(fromFixed(toFixed(1.0)), 1.0);
    EXPECT_NEAR(fromFixed(toFixed(0.7071)), 0.7071, 1.0 / 256);
}

TEST(FixedPoint, FixMulMatchesScaledProduct)
{
    std::int32_t a = toFixed(1.5), b = toFixed(2.0);
    EXPECT_NEAR(fromFixed(fixMul(a, b)), 3.0, 1.0 / 128);
    // Rounding, not truncation.
    EXPECT_EQ(fixMul(1, 128), 1); // 1/256 * 0.5 rounds up to 1/256
}

TEST(FixedPoint, Saturate16)
{
    EXPECT_EQ(saturate16(40000), 32767);
    EXPECT_EQ(saturate16(-40000), -32768);
    EXPECT_EQ(saturate16(1234), 1234);
}

TEST(MemoryImage, ZeroDefaultAndStores)
{
    MemoryImage mem;
    EXPECT_EQ(mem.loadInt(100), 0);
    EXPECT_EQ(mem.loadFloat(100), 0.0);
    mem.storeInt(100, 42);
    EXPECT_EQ(mem.loadInt(100), 42);
    EXPECT_EQ(mem.loadFloat(100), 42.0); // coherent views
    mem.storeFloat(101, 2.5);
    EXPECT_EQ(mem.loadFloat(101), 2.5);
    EXPECT_EQ(mem.loadInt(101), 2);
    EXPECT_EQ(mem.size(), 2u);
}

TEST(MemoryImage, WordEquality)
{
    EXPECT_TRUE(Word::fromInt(3) == Word::fromInt(3));
    EXPECT_FALSE(Word::fromInt(3) == Word::fromInt(4));
    EXPECT_TRUE(Word::fromFloat(1.5) == Word::fromFloat(1.5));
}

} // namespace
} // namespace cs
