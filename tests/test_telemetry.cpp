/**
 * @file
 * Tests for the time-series telemetry sampler
 * (support/telemetry.hpp): JSONL well-formedness, sequence/time/
 * counter monotonicity, the final-sample-on-stop contract, delta
 * emission, and a sampler-vs-worker stress for the sanitizer builds
 * (Telemetry* is part of CS_SANITIZE_TESTS).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/histogram.hpp"
#include "support/metrics.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace cs {
namespace {

namespace fs = std::filesystem;

std::string
tempFile(const std::string &name)
{
    fs::path path = fs::path(::testing::TempDir()) / name;
    fs::remove(path);
    return path.string();
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Minimal numeric field extraction (the files are flat-ish JSON with
 *  numeric leaves; good enough to assert on without a JSON parser). */
std::int64_t
jsonField(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return -1;
    return std::atoll(line.c_str() + pos + needle.size());
}

TEST(Telemetry, RssReadsPositive)
{
    // Any live process has resident pages.
    EXPECT_GT(readRssKb(), 0u);
}

TEST(Telemetry, JsonlLinesAreWellFormedAndMonotone)
{
    std::string path = tempFile("telemetry_monotone.jsonl");
    CounterSet counters;
    counters.bump("work.items", 1);

    TelemetrySampler sampler;
    TelemetryConfig config;
    config.path = path;
    config.intervalMs = 10;
    ASSERT_TRUE(sampler.start(
        config, [&counters] { return counters; },
        [](std::ostream &os) { os << ",\"extra\":42"; }));
    EXPECT_TRUE(sampler.running());
    for (int i = 0; i < 5; ++i) {
        counters.bump("work.items", 3);
        std::this_thread::sleep_for(std::chrono::milliseconds(12));
    }
    sampler.stop();
    EXPECT_FALSE(sampler.running());

    std::vector<std::string> lines = readLines(path);
    ASSERT_GE(lines.size(), 2u);
    std::int64_t lastSeq = -1, lastT = -1, lastItems = -1;
    for (const std::string &line : lines) {
        // Well-formed: one complete object per line with balanced
        // braces and the fixed schema fields present.
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        long depth = 0;
        for (char c : line) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
            ASSERT_GE(depth, 0) << line;
        }
        EXPECT_EQ(depth, 0) << line;
        EXPECT_NE(line.find("\"counters\":{"), std::string::npos);
        EXPECT_NE(line.find("\"deltas\":{"), std::string::npos);
        EXPECT_EQ(jsonField(line, "extra"), 42);

        // Monotone: seq strictly increasing from 0, time and the
        // cumulative counter non-decreasing.
        EXPECT_EQ(jsonField(line, "seq"), lastSeq + 1);
        lastSeq = jsonField(line, "seq");
        EXPECT_GE(jsonField(line, "t_ms"), lastT);
        lastT = jsonField(line, "t_ms");
        EXPECT_GE(jsonField(line, "work.items"), lastItems);
        lastItems = jsonField(line, "work.items");
        EXPECT_GT(jsonField(line, "rss_kb"), 0);
    }
}

TEST(Telemetry, StopWritesTheFinalState)
{
    // The shutdown contract: the last line reflects counter state at
    // stop() time even when the interval is far longer than the run.
    std::string path = tempFile("telemetry_final.jsonl");
    CounterSet counters;
    TelemetrySampler sampler;
    TelemetryConfig config;
    config.path = path;
    config.intervalMs = 60000; // Never fires on its own.
    ASSERT_TRUE(sampler.start(config,
                              [&counters] { return counters; }));
    counters.bump("done", 7);
    sampler.stop();

    std::vector<std::string> lines = readLines(path);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(jsonField(lines.back(), "done"), 7);
    // Stop is idempotent and restart truncates.
    sampler.stop();
    ASSERT_TRUE(sampler.start(config,
                              [&counters] { return counters; }));
    sampler.stop();
    EXPECT_EQ(readLines(path).size(), 1u);
}

TEST(Telemetry, DeltasCarryOnlyChangedCounters)
{
    std::string path = tempFile("telemetry_deltas.jsonl");
    CounterSet counters;
    counters.bump("steady", 5);
    counters.bump("moving", 1);

    TelemetrySampler sampler;
    TelemetryConfig config;
    config.path = path;
    config.intervalMs = 20;
    ASSERT_TRUE(sampler.start(config,
                              [&counters] { return counters; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    counters.bump("moving", 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sampler.stop();

    std::vector<std::string> lines = readLines(path);
    ASSERT_GE(lines.size(), 2u);
    // First line: everything is new, so both counters are deltas.
    std::size_t firstDeltas = lines.front().find("\"deltas\":{");
    ASSERT_NE(firstDeltas, std::string::npos);
    std::string first = lines.front().substr(firstDeltas);
    EXPECT_NE(first.find("\"steady\":5"), std::string::npos);
    // A later line where only "moving" changed must not repeat
    // "steady" in its deltas object (it stays in the cumulative
    // counters object).
    bool sawMovingOnlyDelta = false;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::size_t at = lines[i].find("\"deltas\":{");
        ASSERT_NE(at, std::string::npos);
        std::string deltas = lines[i].substr(at);
        if (deltas.find("\"moving\":4") != std::string::npos) {
            EXPECT_EQ(deltas.find("\"steady\""), std::string::npos);
            sawMovingOnlyDelta = true;
        }
        EXPECT_NE(lines[i].find("\"steady\":5"), std::string::npos);
    }
    EXPECT_TRUE(sawMovingOnlyDelta);
}

TEST(Telemetry, StartFailsOnUnwritablePath)
{
    TelemetrySampler sampler;
    TelemetryConfig config;
    config.path = "/nonexistent-dir-xyz/telemetry.jsonl";
    EXPECT_FALSE(
        sampler.start(config, [] { return CounterSet(); }));
    EXPECT_FALSE(sampler.running());
}

TEST(TelemetryStress, SamplerVsWorkersUnderLoad)
{
    // The TSan surface: worker threads bump a shared CounterSet and
    // record into a registry histogram while the sampler snapshots
    // both every millisecond. Any unsynchronized access trips the
    // sanitizer builds.
    std::string path = tempFile("telemetry_stress.jsonl");
    MetricsRegistry registry;
    StreamingHistogram &latency =
        registry.streamingHistogram("stress.lat");
    CounterSet counters;

    TelemetrySampler sampler;
    TelemetryConfig config;
    config.path = path;
    config.intervalMs = 1;
    ASSERT_TRUE(sampler.start(
        config, [&counters] { return counters; },
        [&registry](std::ostream &os) {
            HistogramSummary s = summarizeHistogram(
                registry.streamingSnapshot()["stress.lat"]);
            os << ",\"p99\":" << s.p99;
        }));

    constexpr int kThreads = 4;
    constexpr int kIterations = 5000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&counters, &latency, t] {
            for (int i = 0; i < kIterations; ++i) {
                counters.bump("stress.ops");
                latency.record(
                    static_cast<std::uint64_t>(i % 1000 + t));
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    sampler.stop();

    std::vector<std::string> lines = readLines(path);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(jsonField(lines.back(), "stress.ops"),
              kThreads * kIterations);
}

} // namespace
} // namespace cs
