/**
 * @file
 * Span tracer tests: ring-buffer wraparound semantics, the disabled
 * path emitting nothing, Chrome trace_event JSON validity for a real
 * scheduled batch (the cs_batch --trace surface, in process), and a
 * TSan-gated concurrent-drain stress (suite TraceTsan*, which the
 * sanitizer builds select — see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "pipeline/pipeline.hpp"
#include "support/logging.hpp"
#include "support/trace.hpp"

namespace cs {
namespace {

/** Enable tracing for one test, restoring the previous state. */
struct ScopedTracing
{
    explicit ScopedTracing(bool on) : previous(trace::enabled())
    {
        trace::setEnabled(on);
        trace::clear();
    }
    ~ScopedTracing() { trace::setEnabled(previous); }
    bool previous;
};

std::vector<trace::Event>
eventsNamed(const std::vector<trace::Event> &events,
            const std::string &name)
{
    std::vector<trace::Event> out;
    for (const trace::Event &e : events) {
        if (trace::nameOf(e.name) == name)
            out.push_back(e);
    }
    return out;
}

// The macro-driven cases only exist when tracing is compiled in; a
// -DCS_TRACING=OFF build still runs the direct-API tests below them.
#ifndef CS_TRACE_DISABLED

TEST(TraceBuffer, DisabledEmitsNothing)
{
    ScopedTracing tracing(false);
    {
        CS_TRACE_SPAN1("trace_test.disabled_span", "x", 1);
        CS_TRACE_INSTANT1("trace_test.disabled_instant", "x", 2);
    }
    EXPECT_TRUE(trace::drain().empty());
}

TEST(TraceBuffer, SpanRoundTripWithArgs)
{
    ScopedTracing tracing(true);
    {
        CS_TRACE_SPAN2("trace_test.span", "alpha", 7, "beta", -3);
        CS_TRACE_INSTANT1("trace_test.instant", "gamma", 42);
    }
    trace::setEnabled(false);

    std::vector<trace::Event> events = trace::drain();
    std::vector<trace::Event> spans =
        eventsNamed(events, "trace_test.span");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].kind, trace::EventKind::Span);
    EXPECT_GE(spans[0].durNs, 0);
    ASSERT_EQ(spans[0].argCount, 2);
    EXPECT_EQ(trace::nameOf(spans[0].args[0].first), "alpha");
    EXPECT_EQ(spans[0].args[0].second, 7);
    EXPECT_EQ(trace::nameOf(spans[0].args[1].first), "beta");
    EXPECT_EQ(spans[0].args[1].second, -3);

    std::vector<trace::Event> instants =
        eventsNamed(events, "trace_test.instant");
    ASSERT_EQ(instants.size(), 1u);
    EXPECT_EQ(instants[0].kind, trace::EventKind::Instant);
    EXPECT_EQ(instants[0].durNs, 0);
    ASSERT_EQ(instants[0].argCount, 1);
    EXPECT_EQ(instants[0].args[0].second, 42);

    // The instant happened inside the span's interval.
    EXPECT_GE(instants[0].tsNs, spans[0].tsNs);
    EXPECT_LE(instants[0].tsNs, spans[0].tsNs + spans[0].durNs);
}

TEST(TraceBuffer, MidSpanEnableEmitsNothing)
{
    ScopedTracing tracing(false);
    {
        CS_TRACE_SPAN("trace_test.half_observed");
        trace::setEnabled(true);
    }
    trace::setEnabled(false);
    EXPECT_TRUE(
        eventsNamed(trace::drain(), "trace_test.half_observed").empty());
}

#endif // CS_TRACE_DISABLED

TEST(TraceBuffer, WraparoundKeepsNewest)
{
    ScopedTracing tracing(true);
    const std::uint16_t name = trace::internName("trace_test.wrap");
    const std::uint16_t argName = trace::internName("i");
    const std::size_t capacity = trace::threadBufferCapacity();
    const std::size_t total = capacity + capacity / 2;
    for (std::size_t i = 0; i < total; ++i)
        trace::emitInstant(name, 1, argName,
                           static_cast<std::int64_t>(i));
    trace::setEnabled(false);

    std::vector<trace::Event> events =
        eventsNamed(trace::drain(), "trace_test.wrap");
    ASSERT_FALSE(events.empty());
    EXPECT_LE(events.size(), capacity);
    // Everything that survives is from the newest `capacity` emissions,
    // and the very last emission always survives.
    std::int64_t minSeen = events.front().args[0].second;
    std::int64_t maxSeen = minSeen;
    for (const trace::Event &e : events) {
        minSeen = std::min(minSeen, e.args[0].second);
        maxSeen = std::max(maxSeen, e.args[0].second);
    }
    EXPECT_EQ(maxSeen, static_cast<std::int64_t>(total - 1));
    EXPECT_GE(minSeen, static_cast<std::int64_t>(total - capacity));
}

TEST(TraceBuffer, ClearForgetsBufferedEvents)
{
    ScopedTracing tracing(true);
    trace::emitInstant(trace::internName("trace_test.before_clear"));
    trace::clear();
    trace::emitInstant(trace::internName("trace_test.after_clear"));
    trace::setEnabled(false);

    std::vector<trace::Event> events = trace::drain();
    EXPECT_TRUE(eventsNamed(events, "trace_test.before_clear").empty());
    EXPECT_EQ(eventsNamed(events, "trace_test.after_clear").size(), 1u);
}

/**
 * Minimal JSON well-formedness checker (objects, arrays, strings,
 * numbers, literals) — enough to certify the Chrome trace export
 * without a JSON dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        return value() && (skipWs(), pos_ == text_.size());
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        return literal("true") || literal("false") || literal("null");
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}')
            return ++pos_, true;
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}')
                return ++pos_, true;
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']')
            return ++pos_, true;
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']')
                return ++pos_, true;
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

#ifndef CS_TRACE_DISABLED

TEST(TraceChrome, ValidJsonWithSpansInEveryPhase)
{
    setVerboseLogging(false);
    ScopedTracing tracing(true);

    // The cs_batch --trace surface, in process: a small pipelined
    // batch on the central machine with a parallel II search, so the
    // trace must cover every instrumented phase including the
    // speculative ii_attempt spans.
    Machine machine = makeCentral();
    std::vector<ScheduleJob> batch;
    for (const char *name : {"FIR-INT", "FFT"}) {
        ScheduleJob job;
        job.label = std::string(name) + "@central";
        job.kernel = kernelByName(name).build();
        job.block = BlockId(0);
        job.machine = &machine;
        job.pipelined = true;
        batch.push_back(std::move(job));
    }
    PipelineConfig config;
    config.numThreads = 2;
    config.iiSearchWorkers = 2;
    SchedulingPipeline pipeline(config);
    std::vector<JobResult> results = pipeline.run(batch);
    trace::setEnabled(false);
    for (const JobResult &r : results)
        EXPECT_TRUE(r.success);

    std::vector<trace::Event> events = trace::drain();
    std::map<std::string, int> spanCounts;
    for (const trace::Event &e : events) {
        if (e.kind == trace::EventKind::Span)
            ++spanCounts[trace::nameOf(e.name)];
    }
    for (const char *phase :
         {"block_analysis", "ii_attempt", "schedule_block",
          "schedule_op", "perm_search.read", "perm_search.write"}) {
        EXPECT_GE(spanCounts[phase], 1) << "no '" << phase << "' span";
    }
    EXPECT_GE(spanCounts["schedule_job:FIR-INT@central"], 1);

    std::ostringstream json;
    trace::exportChromeTrace(json, events);
    const std::string text = json.str();
    EXPECT_TRUE(JsonChecker(text).valid())
        << "Chrome trace is not well-formed JSON";
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    // Every event carries the Chrome-required keys.
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\":"), std::string::npos);
    EXPECT_NE(text.find("\"tid\":"), std::string::npos);
    EXPECT_NE(text.find("\"dur\":"), std::string::npos);
}

#endif // CS_TRACE_DISABLED

TEST(TraceAggregate, SpanStatsSummarizeDurations)
{
    ScopedTracing tracing(true);
    const std::uint16_t name = trace::internName("trace_test.agg");
    // Synthetic spans with known durations: 1ms .. 10ms.
    for (int i = 1; i <= 10; ++i)
        trace::emitSpan(name, trace::nowNs(),
                        static_cast<std::int64_t>(i) * 1000000);
    trace::setEnabled(false);

    std::vector<trace::SpanStats> stats =
        trace::aggregateSpans(trace::drain());
    const trace::SpanStats *agg = nullptr;
    for (const trace::SpanStats &s : stats) {
        if (s.name == "trace_test.agg")
            agg = &s;
    }
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->count, 10u);
    EXPECT_NEAR(agg->totalMs, 55.0, 1e-9);
    EXPECT_NEAR(agg->maxMs, 10.0, 1e-9);
    EXPECT_GE(agg->p95Ms, agg->p50Ms);
    EXPECT_GE(agg->maxMs, agg->p95Ms);
}

TEST(TraceTsan, ConcurrentWritersAndDrainers)
{
    // Writers keep emitting while two drainers snapshot and one thread
    // toggles clear(): every payload access is atomic, so TSan must
    // stay quiet and decoded events must never be torn (a torn decode
    // would surface as an arg that doesn't match its event index).
    ScopedTracing tracing(true);
    constexpr int kWriters = 4;
    constexpr int kEvents = 20000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([w] {
            const std::uint16_t name =
                trace::internName("trace_test.tsan");
            const std::uint16_t argName = trace::internName("v");
            for (int i = 0; i < kEvents; ++i) {
                std::int64_t v =
                    static_cast<std::int64_t>(w) * kEvents + i;
                // The two args always agree; a torn slot would not.
                trace::emitInstant(name, 2, argName, v, argName, v);
            }
        });
    }
    std::vector<std::thread> drainers;
    for (int d = 0; d < 2; ++d) {
        drainers.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                for (const trace::Event &e : trace::drain()) {
                    if (trace::nameOf(e.name) == "trace_test.tsan" &&
                        e.argCount == 2) {
                        ASSERT_EQ(e.args[0].second, e.args[1].second)
                            << "torn slot decoded";
                    }
                }
            }
        });
    }
    std::thread clearer([&stop] {
        while (!stop.load(std::memory_order_relaxed))
            trace::clear();
    });

    for (std::thread &t : writers)
        t.join();
    stop.store(true);
    for (std::thread &t : drainers)
        t.join();
    clearer.join();
    trace::setEnabled(false);

    // Quiescent: a final drain still decodes cleanly.
    for (const trace::Event &e : trace::drain()) {
        if (trace::nameOf(e.name) == "trace_test.tsan")
            EXPECT_EQ(e.args[0].second, e.args[1].second);
    }
}

} // namespace
} // namespace cs
