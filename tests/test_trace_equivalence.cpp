/**
 * @file
 * Trace-equivalence suite: scheduling with the span tracer ENABLED
 * must produce byte-identical listings to scheduling with it disabled.
 * The tracer is a pure observer — instrumentation only reads scheduler
 * state — so every Table-1 kernel on each evaluation machine, block
 * and modulo paths, is held against the same golden fingerprints that
 * tests/test_sched_equivalence.cpp checks with tracing off.
 *
 * The instantiation names mirror that suite (<machine>_block /
 * <machine>_modulo) so the slow big-machine modulo combinations route
 * to the perf label exactly like the tracing-off runs do.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "core/export.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "kernels/kernels.hpp"
#include "machine/builders.hpp"
#include "support/logging.hpp"
#include "support/trace.hpp"

#ifndef CS_TEST_DATA_DIR
#define CS_TEST_DATA_DIR "."
#endif

namespace cs {
namespace {

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t state = 14695981039346656037ull;
    for (unsigned char c : data) {
        state ^= c;
        state *= 1099511628211ull;
    }
    return state;
}

struct GoldenRecord
{
    int ii = 0;
    std::size_t bytes = 0;
    std::uint64_t hash = 0;
};

/** key: "kernel|machine|mode" -> fingerprint (same file the
 *  tracing-off equivalence suite reads). */
const std::map<std::string, GoldenRecord> &
goldenTable()
{
    static std::map<std::string, GoldenRecord> table = [] {
        std::map<std::string, GoldenRecord> out;
        std::ifstream in(std::string(CS_TEST_DATA_DIR) +
                         "/golden_listings.txt");
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::istringstream fields(line);
            std::string key;
            GoldenRecord record;
            fields >> key >> record.ii >> record.bytes >> std::hex >>
                record.hash >> std::dec;
            if (!key.empty())
                out[key] = record;
        }
        return out;
    }();
    return table;
}

Machine
machineByName(const std::string &name)
{
    if (name == "central")
        return makeCentral();
    if (name == "clustered2")
        return makeClustered({}, 2);
    if (name == "clustered4")
        return makeClustered({}, 4);
    CS_ASSERT(name == "distributed", "unknown machine ", name);
    return makeDistributed();
}

class TraceEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{};

TEST_P(TraceEquivalence, TracingOnMatchesGoldens)
{
    setVerboseLogging(false);
    const auto &[machineName, pipelined] = GetParam();
    Machine machine = machineByName(machineName);

    const bool wasEnabled = trace::enabled();
    trace::setEnabled(true);
    trace::clear();

    for (const KernelSpec &spec : allKernels()) {
        Kernel kernel = spec.build();
        int ii = 0;
        std::string listing;
        if (pipelined) {
            PipelineResult result =
                schedulePipelined(kernel, BlockId(0), machine);
            ASSERT_TRUE(result.success)
                << spec.name << " on " << machineName;
            ii = result.ii;
            listing = exportListing(result.inner.kernel, machine,
                                    result.inner.schedule);
        } else {
            ScheduleResult result =
                scheduleBlock(kernel, BlockId(0), machine);
            ASSERT_TRUE(result.success)
                << spec.name << " on " << machineName;
            listing = exportListing(result.kernel, machine,
                                    result.schedule);
        }

        std::string kernelKey = spec.name;
        for (char &c : kernelKey) {
            if (c == ' ')
                c = '_';
        }
        std::string key = kernelKey + "|" + machineName + "|" +
                          (pipelined ? "modulo" : "block");
        auto it = goldenTable().find(key);
        ASSERT_NE(it, goldenTable().end())
            << "no golden fingerprint for " << key;
        EXPECT_EQ(ii, it->second.ii) << key << " with tracing enabled";
        EXPECT_EQ(listing.size(), it->second.bytes)
            << key << " with tracing enabled";
        EXPECT_EQ(fnv1a(listing), it->second.hash)
            << key
            << ": tracing changed the schedule (the tracer must be a "
               "pure observer)";
    }

    trace::setEnabled(wasEnabled);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, TraceEquivalence,
    ::testing::Combine(::testing::Values("central", "clustered2",
                                         "clustered4", "distributed"),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_modulo" : "_block");
    });

} // namespace
} // namespace cs
