/**
 * @file
 * Tests for the independent schedule validator: it must accept what
 * the scheduler produces (covered elsewhere) and, crucially, reject
 * hand-broken schedules — these tests tamper with real schedules and
 * expect specific complaints.
 */

#include <gtest/gtest.h>

#include "core/list_scheduler.hpp"
#include "ir/builder.hpp"
#include "machine/builders.hpp"

namespace cs {
namespace {

Kernel
smallKernel()
{
    KernelBuilder b("small");
    b.block("body");
    Val x = b.load(100, 0, "x");
    Val y = b.iadd(x, 1, "y");
    b.store(200, y);
    return b.take();
}

ScheduleResult
goodSchedule(const Machine &machine)
{
    Kernel kernel = smallKernel();
    ScheduleResult result = scheduleBlock(kernel, BlockId(0), machine);
    EXPECT_TRUE(result.success);
    return result;
}

TEST(Validator, AcceptsGoodSchedule)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result = goodSchedule(machine);
    EXPECT_TRUE(
        validateSchedule(result.kernel, machine, result.schedule)
            .empty());
}

TEST(Validator, CatchesMissingOperation)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result = goodSchedule(machine);
    // Rebuild a schedule that forgot one placement.
    BlockSchedule broken(BlockId(0), 0);
    const Block &blk = result.kernel.block(BlockId(0));
    for (std::size_t i = 1; i < blk.operations.size(); ++i) {
        const Placement &p =
            result.schedule.placement(blk.operations[i]);
        broken.place(blk.operations[i], p.cycle, p.fu);
    }
    for (const RouteRecord &r : result.schedule.routes())
        broken.addRoute(r);
    auto problems = validateSchedule(result.kernel, machine, broken);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("unscheduled"), std::string::npos);
}

TEST(Validator, CatchesDoubleBookedUnit)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result = goodSchedule(machine);
    const Block &blk = result.kernel.block(BlockId(0));
    BlockSchedule broken(BlockId(0), 0);
    // Put everything on one unit in one cycle.
    for (OperationId op : blk.operations)
        broken.place(op, 0, FuncUnitId(0));
    auto problems = validateSchedule(result.kernel, machine, broken);
    bool double_booked = false, dependence = false;
    for (const auto &p : problems) {
        if (p.find("double-booked") != std::string::npos)
            double_booked = true;
        if (p.find("dependence violated") != std::string::npos)
            dependence = true;
    }
    EXPECT_TRUE(double_booked);
    EXPECT_TRUE(dependence);
}

TEST(Validator, CatchesIncapableUnit)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result = goodSchedule(machine);
    const Block &blk = result.kernel.block(BlockId(0));
    BlockSchedule broken(BlockId(0), 0);
    int cycle = 0;
    for (OperationId op : blk.operations) {
        // ADD0 cannot load.
        broken.place(op, cycle, FuncUnitId(0));
        cycle += 4;
    }
    auto problems = validateSchedule(result.kernel, machine, broken);
    bool incapable = false;
    for (const auto &p : problems) {
        if (p.find("incapable") != std::string::npos)
            incapable = true;
    }
    EXPECT_TRUE(incapable);
}

TEST(Validator, CatchesRouteRegisterFileMismatch)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result = goodSchedule(machine);
    // Tamper: move one route's read stub to a different file's port.
    BlockSchedule broken(BlockId(0), 0);
    const Block &blk = result.kernel.block(BlockId(0));
    for (OperationId op : blk.operations) {
        const Placement &p = result.schedule.placement(op);
        broken.place(op, p.cycle, p.fu);
    }
    bool tampered = false;
    for (RouteRecord route : result.schedule.routes()) {
        if (!tampered && route.writeStub) {
            // Point the write stub at the other register file the
            // writer's bus can reach, if any.
            const Placement &wp = broken.placement(route.writer);
            for (const WriteStub &alt : machine.writeStubs(wp.fu)) {
                if (machine.writePortRegFile(alt.writePort) !=
                    machine.writePortRegFile(
                        route.writeStub->writePort)) {
                    route.writeStub = alt;
                    tampered = true;
                    break;
                }
            }
        }
        broken.addRoute(route);
    }
    ASSERT_TRUE(tampered);
    auto problems = validateSchedule(result.kernel, machine, broken);
    bool mismatch = false;
    for (const auto &p : problems) {
        if (p.find("different register files") != std::string::npos)
            mismatch = true;
    }
    EXPECT_TRUE(mismatch);
}

TEST(Validator, CatchesMissingRoute)
{
    Machine machine = makeFigure5Machine();
    ScheduleResult result = goodSchedule(machine);
    BlockSchedule broken(BlockId(0), 0);
    const Block &blk = result.kernel.block(BlockId(0));
    for (OperationId op : blk.operations) {
        const Placement &p = result.schedule.placement(op);
        broken.place(op, p.cycle, p.fu);
    }
    // Drop all routes.
    auto problems = validateSchedule(result.kernel, machine, broken);
    bool missing = false;
    for (const auto &p : problems) {
        if (p.find("no route") != std::string::npos)
            missing = true;
    }
    EXPECT_TRUE(missing);
}

TEST(Validator, CatchesBusConflict)
{
    // Construct two write stubs of different values on one bus in one
    // cycle by brute force: schedule two independent adds on the
    // figure-5 machine at the same cycle on ADD0/LS sharing busX.
    Machine machine = makeFigure5Machine();
    KernelBuilder b("conflict");
    b.block("body");
    Val p = b.iadd(1, 2, "p");
    Val q = b.load(7, 0, "q");
    Val r = b.iadd(p, 3, "r");
    Val s = b.iadd(q, 4, "s"); // hmm: q read by ADD? needs routing
    b.store(300, r);
    b.store(301, s);
    Kernel kernel = b.take();
    ScheduleResult good = scheduleBlock(kernel, BlockId(0), machine);
    ASSERT_TRUE(good.success);

    // Tamper: force both p's and q's write stubs onto busX targeting
    // the same cycle by moving placements.
    BlockSchedule broken(BlockId(0), 0);
    const Block &blk = good.kernel.block(BlockId(0));
    for (OperationId op : blk.operations) {
        const Placement &pl = good.schedule.placement(op);
        broken.place(op, pl.cycle, pl.fu);
    }
    std::vector<RouteRecord> routes = good.schedule.routes();
    // Find two routes with distinct values whose writers complete on
    // the same cycle and force them onto one bus.
    bool tampered = false;
    for (std::size_t i = 0; i < routes.size() && !tampered; ++i) {
        for (std::size_t j = i + 1; j < routes.size(); ++j) {
            if (!routes[i].writeStub || !routes[j].writeStub)
                continue;
            if (routes[i].value == routes[j].value)
                continue;
            routes[j].writeStub->bus = routes[i].writeStub->bus;
            // Align completion cycles via placements if needed: just
            // check the validator notices *some* problem after the
            // bus move (shared resource or endpoint mismatch).
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered);
    BlockSchedule tampered_sched(BlockId(0), 0);
    for (OperationId op : blk.operations) {
        const Placement &pl = good.schedule.placement(op);
        tampered_sched.place(op, pl.cycle, pl.fu);
    }
    for (const RouteRecord &r2 : routes)
        tampered_sched.addRoute(r2);
    auto problems =
        validateSchedule(good.kernel, machine, tampered_sched);
    EXPECT_FALSE(problems.empty());
}

} // namespace
} // namespace cs
